#include "src/runtime/concurrent_machine.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/mutex.h"
#include "src/runtime/mc_hooks.h"

namespace optsched::runtime {

const char* QueueBackendName(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kLocked: return "locked";
    case QueueBackend::kChaseLev: return "chase_lev";
  }
  return "?";
}

bool ParseQueueBackend(std::string_view name, QueueBackend& out) {
  if (name == "locked") {
    out = QueueBackend::kLocked;
    return true;
  }
  if (name == "chase_lev") {
    out = QueueBackend::kChaseLev;
    return true;
  }
  return false;
}

ConcurrentRunQueue::ConcurrentRunQueue(QueueBackend backend, uint32_t deque_capacity,
                                       bool broken_steal_order)
    : backend_(backend) {
  if (backend_ == QueueBackend::kChaseLev) {
    deque_ = std::make_unique<ChaseLevDeque>(deque_capacity, broken_steal_order);
  }
}

OPTSCHED_HOT_PATH void ConcurrentRunQueue::PublishLocked() {
  LoadPair load;
  load.task_count = static_cast<int64_t>(ready_.size()) + (running_ ? 1 : 0);
  load.weighted_load = queued_weight_ + running_weight_;
  published_.Write(load);
}

std::optional<WorkItem> ConcurrentRunQueue::PopForRun() {
  return backend_ == QueueBackend::kLocked ? PopForRunLockedBackend() : PopForRunChaseLev();
}

std::optional<WorkItem> ConcurrentRunQueue::PopForRunLockedBackend() {
  LockGuard guard(lock_);
  // Invariant before mutation: if the owner already runs an item, abort with
  // the queue untouched — the old order popped and unpublished first, so a
  // firing check reported a state the queue was no longer in (and the item
  // was silently gone from the load accounting).
  OPTSCHED_CHECK_MSG(!running_, "owner already runs an item");
  if (ready_.empty()) {
    return std::nullopt;
  }
  WorkItem item = ready_.front();
  ready_.pop_front();
  queued_weight_ -= item.weight;
  running_ = true;
  running_weight_ = item.weight;
  PublishLocked();
  return item;
}

std::optional<WorkItem> ConcurrentRunQueue::PopForRunChaseLev() {
  OPTSCHED_CHECK_MSG(running_a_.load(std::memory_order_relaxed) == 0,  // order: single-writer-store
                     "owner already runs an item");
  DrainInboxToDeque();
  std::optional<WorkItem> item = deque_->PopBottom();
  if (!item.has_value()) {
    return std::nullopt;
  }
  // The popped item stays in the published count (it is the core's
  // "current" until
  // FinishCurrent) — only the running flag and its weight attribution move.
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadWrite, this);
  running_a_.store(1, std::memory_order_relaxed);  // order: single-writer-store
  running_weight_a_.store(item->weight, std::memory_order_relaxed);  // order: single-writer-store
  return item;
}

OPTSCHED_HOT_PATH void ConcurrentRunQueue::DrainInboxToDeque() {
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadRead, this);
  if (inbox_count_.load(std::memory_order_acquire) == 0) {
    return;
  }
  // Refill hysteresis: while the ring is above half full, skip the drain so
  // the inbox lock is taken once per capacity/2 pops instead of once per pop.
  // Without this, a spilled-over queue refills ONE freed slot per PopForRun
  // and the owner serializes through the lock on every item — exactly the
  // behaviour the lock-free backend exists to avoid. Only the owner grows
  // `bottom`, so its relaxed size read can only overestimate (thieves shrink
  // it concurrently); a skipped drain is retried on the next pop, and an
  // empty ring always passes the gate, so PopForRun can never report empty
  // while the inbox holds work.
  if (deque_->SizeRelaxed() * 2 > static_cast<int64_t>(deque_->capacity())) {
    return;
  }
  LockGuard guard(lock_);
  int64_t moved = 0;
  while (!inbox_.empty() && deque_->PushBottom(inbox_.front())) {
    inbox_.pop_front();
    ++moved;
  }
  if (moved > 0) {
    // The items were already counted by Push (ext_enq) when admitted;
    // only the inbox-residency counter changes.
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadWrite, this);
    inbox_count_.fetch_sub(moved, std::memory_order_release);
  }
}

void ConcurrentRunQueue::FinishCurrent() {
  if (backend_ == QueueBackend::kLocked) {
    LockGuard guard(lock_);
    OPTSCHED_CHECK(running_);
    running_ = false;
    running_weight_ = 0;
    PublishLocked();
    return;
  }
  OPTSCHED_CHECK(running_a_.load(std::memory_order_relaxed) == 1);  // order: single-writer-store
  // One decision point for the whole accounting group. This is the ONLY
  // path that lowers the published task count without winning a top CAS —
  // thieves bracket their steal with FinishedCount() reads so the
  // steal-safety property can excuse exactly these decrements
  // (StealObservation::victim_finished_delta). Every counter here is
  // owner-written only, so plain load+store replaces lock-prefixed RMWs on
  // the per-item hot path.
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadWrite, this);
  // order: single-writer-store
  const int64_t w = running_weight_a_.load(std::memory_order_relaxed);
  running_a_.store(0, std::memory_order_relaxed);  // order: single-writer-store
  running_weight_a_.store(0, std::memory_order_relaxed);  // order: single-writer-store
  fin_weight_.store(fin_weight_.load(std::memory_order_relaxed) + w,  // order: single-writer-store
                    std::memory_order_relaxed);
  fin_tasks_.store(fin_tasks_.load(std::memory_order_relaxed) + 1,  // order: single-writer-store
                   std::memory_order_relaxed);
}

void ConcurrentRunQueue::Push(WorkItem item) {
  if (backend_ == QueueBackend::kLocked) {
    LockGuard guard(lock_);
    PushLocked(item);
    return;
  }
  // Any thread may submit, but only the owner may touch the deque's bottom:
  // land in the inbox, visible to the load counters immediately so the
  // selection phase sees the work before the owner has drained it.
  {
    LockGuard guard(lock_);
    inbox_.push_back(item);
  }
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadWrite, this);
  inbox_count_.fetch_add(1, std::memory_order_release);
  ext_enq_tasks_.fetch_add(1, std::memory_order_relaxed);  // order: external-submit-counter
  // order: external-submit-counter
  ext_enq_weight_.fetch_add(item.weight, std::memory_order_relaxed);
}

OPTSCHED_HOT_PATH void ConcurrentRunQueue::PushBatchOwner(const WorkItem* items,
                                                          uint32_t count) {
  if (count == 0) {
    return;
  }
  if (backend_ == QueueBackend::kLocked) {
    LockGuard guard(lock_);
    PushBatchLocked(items, count);
    return;
  }
  uint32_t pushed = 0;
  while (pushed < count && deque_->PushBottom(items[pushed])) {
    ++pushed;
  }
  int64_t spilled = 0;
  if (pushed < count) {
    // Ring full: overflow goes to the inbox and re-enters via the next
    // DrainInboxToDeque. Bounded ring + locked spill keeps the fast path
    // allocation-free without dropping work.
    LockGuard guard(lock_);
    for (uint32_t i = pushed; i < count; ++i) {
      // optsched-lint: allow(hot-path-alloc): ring-overflow spill path — off the steady-state fast path by construction (the ring absorbs the working set; E14 alloc audit)
      inbox_.push_back(items[i]);
      ++spilled;
    }
  }
  int64_t weight = 0;
  for (uint32_t i = 0; i < count; ++i) {
    weight += items[i].weight;
  }
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadWrite, this);
  if (spilled > 0) {
    inbox_count_.fetch_add(spilled, std::memory_order_release);
  }
  // The caller is the queue's owner (seeding, a thief landing its batch, or
  // the owner itself): single-writer counters, store-only.
  // order: single-writer-store
  own_enq_tasks_.store(own_enq_tasks_.load(std::memory_order_relaxed) + count,
                       std::memory_order_relaxed);
  // order: single-writer-store
  own_enq_weight_.store(own_enq_weight_.load(std::memory_order_relaxed) + weight,
                        std::memory_order_relaxed);
}

void ConcurrentRunQueue::PushBatchExternal(const WorkItem* items, uint32_t count) {
  if (count == 0) {
    return;
  }
  if (backend_ == QueueBackend::kLocked) {
    LockGuard guard(lock_);
    PushBatchLocked(items, count);
    return;
  }
  // Non-owner context: the deque's bottom and the own_enq counters are both
  // single-writer owner state, so the batch lands in the inbox and is charged
  // to the external-submitter counters — the same path Push takes, amortized
  // to one lock acquisition and one counter RMW pair per batch.
  int64_t weight = 0;
  {
    LockGuard guard(lock_);
    for (uint32_t i = 0; i < count; ++i) {
      inbox_.push_back(items[i]);
      weight += items[i].weight;
    }
  }
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadWrite, this);
  inbox_count_.fetch_add(count, std::memory_order_release);
  ext_enq_tasks_.fetch_add(count, std::memory_order_relaxed);  // order: external-submit-counter
  ext_enq_weight_.fetch_add(weight, std::memory_order_relaxed);  // order: external-submit-counter
}

uint32_t ConcurrentRunQueue::TakeOwnerBatch(uint32_t max_items, std::vector<WorkItem>& out) {
  if (max_items == 0) {
    return 0;
  }
  if (backend_ == QueueBackend::kLocked) {
    LockGuard guard(lock_);
    uint32_t taken = 0;
    // Tail-first, the end StealTailLocked robs from: the dealer sheds the
    // items a thief would have taken, with one publish for the whole batch.
    while (taken < max_items && !ready_.empty()) {
      const WorkItem item = ready_.back();
      ready_.pop_back();
      queued_weight_ -= item.weight;
      out.push_back(item);
      ++taken;
    }
    if (taken > 0) {
      PublishLocked();
    }
    return taken;
  }
  // Owner context: drain the inbox first so dealable work parked there is
  // reachable, then pop at bottom. The last-item PopBottom races thieves on
  // the top CAS — losing simply ends the take.
  DrainInboxToDeque();
  uint32_t taken = 0;
  int64_t weight = 0;
  while (taken < max_items) {
    std::optional<WorkItem> item = deque_->PopBottom();
    if (!item.has_value()) {
      break;
    }
    out.push_back(*item);
    weight += item->weight;
    ++taken;
  }
  if (taken > 0) {
    // Owner-written dealt counters, plain store (single writer). One decision
    // point for the group, mirroring FinishCurrent.
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadWrite, this);
    // order: single-writer-store
    dealt_tasks_.store(dealt_tasks_.load(std::memory_order_relaxed) + taken,
                       std::memory_order_relaxed);
    // order: single-writer-store
    dealt_weight_.store(dealt_weight_.load(std::memory_order_relaxed) + weight,
                        std::memory_order_relaxed);
  }
  return taken;
}

OPTSCHED_HOT_PATH LoadPair ConcurrentRunQueue::ReadLoad() const {
  if (backend_ == QueueBackend::kLocked) {
    return published_.Read();
  }
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeLoadRead, this);
  LoadPair load;
  load.task_count = TasksRelaxed();
  // order: torn-read-tolerated
  load.weighted_load = own_enq_weight_.load(std::memory_order_relaxed) +
                       // order: torn-read-tolerated
                       ext_enq_weight_.load(std::memory_order_relaxed) -
                       fin_weight_.load(std::memory_order_relaxed) -  // order: torn-read-tolerated
                       // order: torn-read-tolerated
                       stolen_weight_.load(std::memory_order_relaxed) -
                       dealt_weight_.load(std::memory_order_relaxed);  // order: torn-read-tolerated
  return load;
}

LoadPair ConcurrentRunQueue::ExactLoad() {
  LockGuard guard(lock_);
  if (backend_ == QueueBackend::kLocked) {
    return ExactLoadLocked();
  }
  LoadPair load;
  int64_t inbox_weight = 0;
  for (const WorkItem& item : inbox_) {
    inbox_weight += item.weight;
  }
  load.task_count = deque_->SizeRelaxed() + static_cast<int64_t>(inbox_.size()) +
                    running_a_.load(std::memory_order_relaxed);  // order: quiescent-report
  load.weighted_load = deque_->SumWeightRelaxed() + inbox_weight +
                       // order: quiescent-report
                       running_weight_a_.load(std::memory_order_relaxed);
  return load;
}

OPTSCHED_HOT_PATH LoadPair ConcurrentRunQueue::ExactLoadLocked() const {
  LoadPair load;
  load.task_count = static_cast<int64_t>(ready_.size()) + (running_ ? 1 : 0);
  load.weighted_load = queued_weight_ + running_weight_;
  return load;
}

OPTSCHED_HOT_PATH uint32_t ConcurrentRunQueue::StealTailLocked(
    FunctionRef<bool(const WorkItem&)> eligible, uint32_t max_items,
    std::vector<WorkItem>& out) {
  uint32_t taken = 0;
  // Newest-first scan by index (erase invalidates deque iterators). Skipped
  // items stay skipped: the batch only tightens the loads as it grows, so an
  // item the rule rejected at a wider gap cannot become eligible later.
  for (size_t i = ready_.size(); i > 0 && taken < max_items;) {
    --i;
    if (!eligible(ready_[i])) {
      continue;
    }
    const WorkItem item = ready_[i];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
    queued_weight_ -= item.weight;
    // optsched-lint: allow(hot-path-alloc): scratch batch at high-water capacity after warmup (E14 alloc audit)
    out.push_back(item);
    ++taken;
  }
  if (taken > 0) {
    // One publish for the whole batch: with per-item publishes a batch of N
    // performed N seqlock writes under BOTH held locks, each one stalling
    // every concurrent snapshot reader into a retry loop.
    PublishLocked();
    // Robbery observation for the owner's deal gate (StolenCount). No
    // SyncPoint: the mutation happens inside the held-lock critical section,
    // whose release is already the checker's decision point — adding one
    // would perturb every committed locked-backend golden schedule.
    // order: locked-critical-section
    locked_stolen_count_.fetch_add(taken, std::memory_order_relaxed);
  }
  return taken;
}

void ConcurrentRunQueue::PushLocked(WorkItem item) {
  queued_weight_ += item.weight;
  ready_.push_back(item);
  PublishLocked();
}

OPTSCHED_HOT_PATH void ConcurrentRunQueue::PushBatchLocked(const WorkItem* items,
                                                           uint32_t count) {
  if (count == 0) {
    return;
  }
  for (uint32_t i = 0; i < count; ++i) {
    queued_weight_ += items[i].weight;
    // optsched-lint: allow(hot-path-alloc): deque blocks are recycled across pop/push cycles; audited allocation-free by bench_e14
    ready_.push_back(items[i]);
  }
  PublishLocked();
}

OPTSCHED_HOT_PATH ChaseLevDeque::TopPeek ConcurrentRunQueue::PeekSteal() const {
  OPTSCHED_DCHECK(backend_ == QueueBackend::kChaseLev);
  return deque_->PeekTop();
}

OPTSCHED_HOT_PATH bool ConcurrentRunQueue::TakeSteal(const ChaseLevDeque::TopPeek& peek) {
  OPTSCHED_DCHECK(backend_ == QueueBackend::kChaseLev);
  if (!deque_->TakeTop(peek)) {
    return false;
  }
  // No SyncPoint between the CAS and these decrements: under the checker the
  // successful take and its load accounting are one atomic step, so a
  // concurrent observer never sees a taken item still counted.
  stolen_tasks_.fetch_add(1, std::memory_order_relaxed);  // order: steal-commit-batch
  // order: steal-commit-batch
  stolen_weight_.fetch_add(peek.item.weight, std::memory_order_relaxed);
  return true;
}

OPTSCHED_HOT_PATH bool ConcurrentRunQueue::TakeStealDeferred(const ChaseLevDeque::TopPeek& peek) {
  OPTSCHED_DCHECK(backend_ == QueueBackend::kChaseLev);
  return deque_->TakeTop(peek);
}

OPTSCHED_HOT_PATH void ConcurrentRunQueue::CommitStealAccounting(uint32_t items, int64_t weight) {
  OPTSCHED_DCHECK(backend_ == QueueBackend::kChaseLev);
  if (items == 0) {
    return;
  }
  // Deliberately NO SyncPoint: under the checker the deferred decrement
  // merges into the adjacent step, so the hook sequence (and every committed
  // golden schedule) is identical to the per-item TakeSteal path. The
  // overcount window this hides is benign by the safe-direction argument in
  // the header — the checker still discharges the end-state properties.
  stolen_tasks_.fetch_add(items, std::memory_order_relaxed);  // order: steal-commit-batch
  stolen_weight_.fetch_add(weight, std::memory_order_relaxed);  // order: steal-commit-batch
}

ConcurrentMachine::ConcurrentMachine(uint32_t num_queues, const MachineOptions& options)
    : options_(options) {
  OPTSCHED_CHECK(num_queues > 0);
  queues_.reserve(num_queues);
  for (uint32_t i = 0; i < num_queues; ++i) {
    queues_.push_back(std::make_unique<ConcurrentRunQueue>(
        options_.backend, options_.deque_capacity, options_.broken_steal_order));
  }
}

OPTSCHED_HOT_PATH void ConcurrentMachine::SnapshotInto(LoadSnapshot& out) const {
  // resize() is a no-op after the first call on a reused buffer; the refill
  // happens in place, so the selection phase never touches the allocator.
  // optsched-lint: allow(hot-path-alloc): resize to a constant queue count — allocates once, first call only
  out.task_count.resize(queues_.size());
  // optsched-lint: allow(hot-path-alloc): resize to a constant queue count — allocates once, first call only
  out.weighted_load.resize(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    const LoadPair load = queues_[i]->ReadLoad();
    out.task_count[i] = load.task_count;
    out.weighted_load[i] = load.weighted_load;
  }
}

LoadSnapshot ConcurrentMachine::Snapshot() const {
  LoadSnapshot snap;
  SnapshotInto(snap);
  return snap;
}

void ConcurrentMachine::LockedSnapshotInto(LoadSnapshot& out) {
  OPTSCHED_CHECK_MSG(options_.backend == QueueBackend::kLocked,
                     "locked selection (D3) requires the locked backend");
  // Lock everything in index order (the machine-wide ranking): exact, but
  // owners stall on their own queue lock for the duration — the cost the
  // paper's design deliberately avoids.
  for (auto& queue : queues_) {
    queue->lock().lock();
  }
  out.task_count.resize(queues_.size());
  out.weighted_load.resize(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    const LoadPair load = queues_[i]->ExactLoadLocked();
    out.task_count[i] = load.task_count;
    out.weighted_load[i] = load.weighted_load;
  }
  for (auto it = queues_.rbegin(); it != queues_.rend(); ++it) {
    (*it)->lock().unlock();
  }
}

LoadSnapshot ConcurrentMachine::LockedSnapshot() {
  LoadSnapshot snap;
  LockedSnapshotInto(snap);
  return snap;
}

uint64_t ConcurrentMachine::TotalSeqlockReadRetries() const {
  uint64_t total = 0;
  for (const auto& queue : queues_) {
    total += queue->SeqlockReadRetries();
  }
  return total;
}

uint64_t ConcurrentMachine::TotalSeqlockWrites() const {
  uint64_t total = 0;
  for (const auto& queue : queues_) {
    total += queue->SeqlockWriteCount();
  }
  return total;
}

OPTSCHED_HOT_PATH bool ConcurrentMachine::TrySteal(
    const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot, Rng& rng,
    const StealOptions& options, StealCounters& counters, const Topology* topology,
    CpuId* victim_out, StealObservation* observation_out, StealScratch* scratch) {
  StealScratch local_scratch;  // tests and the mc harness may not thread one
  StealScratch& s = scratch != nullptr ? *scratch : local_scratch;

  // --- Selection phase (no locks, no allocations, backend-independent) -------
  const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
  policy.FilterCandidatesInto(view, s.candidates);  // step 1
  if (s.candidates.empty()) {
    ++counters.empty_filter;
    return false;
  }
  const CpuId victim = policy.SelectCore(view, s.candidates, rng);  // step 2
  OPTSCHED_CHECK(victim != thief);
  if (victim_out != nullptr) {
    *victim_out = victim;
  }
  ++counters.attempts;

  if (options_.backend == QueueBackend::kChaseLev) {
    return TryStealChaseLev(policy, thief, snapshot, victim, options, counters, topology,
                            observation_out, s);
  }
  return TryStealLocked(policy, thief, snapshot, victim, options, counters, topology,
                        observation_out, s);
}

OPTSCHED_HOT_PATH bool ConcurrentMachine::TryStealLocked(
    const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot, CpuId victim,
    const StealOptions& options, StealCounters& counters, const Topology* topology,
    StealObservation* observation_out, StealScratch& s) {
  // --- Stealing phase (two locks, queue-index order) -------------------------
  ConcurrentRunQueue& victim_queue = *queues_[victim];
  ConcurrentRunQueue& thief_queue = *queues_[thief];
  // Index order, the machine-wide lock ranking (see DualLockGuard). The rank
  // is decided at runtime, so the thread-safety analysis cannot map the
  // guard's {lower, higher} pair back to {victim, thief} by itself; the
  // AssertHeld() pair below re-anchors it — the REQUIRES(lock_) checks on
  // every *Locked call in this phase are live again from there on.
  ConcurrentRunQueue& lower_queue = thief < victim ? thief_queue : victim_queue;
  ConcurrentRunQueue& higher_queue = thief < victim ? victim_queue : thief_queue;
  DualLockGuard guard(lower_queue.lock(), higher_queue.lock());
  victim_queue.lock().AssertHeld();
  thief_queue.lock().AssertHeld();

  // Exact loads for the locked pair; other cores stay as the (stale) snapshot
  // observed them — a thief can only be sure of what it locked. The copy
  // assignment reuses the scratch snapshot's capacity (no allocation).
  LoadSnapshot& locked_snapshot = s.locked_snapshot;
  locked_snapshot.task_count = snapshot.task_count;
  locked_snapshot.weighted_load = snapshot.weighted_load;
  const LoadPair victim_load = victim_queue.ExactLoadLocked();
  const LoadPair thief_load = thief_queue.ExactLoadLocked();
  locked_snapshot.task_count[victim] = victim_load.task_count;
  locked_snapshot.weighted_load[victim] = victim_load.weighted_load;
  locked_snapshot.task_count[thief] = thief_load.task_count;
  locked_snapshot.weighted_load[thief] = thief_load.weighted_load;

  const SelectionView locked_view{.self = thief, .snapshot = locked_snapshot,
                                  .topology = topology};
  if (options.recheck && !policy.CanSteal(locked_view, victim)) {
    ++counters.failed_recheck;
    return false;
  }

  const uint64_t writes_before =
      victim_queue.SeqlockWriteCount() + thief_queue.SeqlockWriteCount();

  const LoadMetric metric = policy.metric();
  // Running pair loads, updated as the batch grows so every migration is
  // judged against the loads it would actually act on.
  int64_t v = metric == LoadMetric::kTaskCount ? victim_load.task_count
                                               : victim_load.weighted_load;
  int64_t t = metric == LoadMetric::kTaskCount ? thief_load.task_count
                                               : thief_load.weighted_load;
  uint32_t max_items;
  if (options.break_batch_bound) {
    // mc fault mode: no cap — the harness wants the victim stripped bare.
    max_items = ~0u;
  } else {
    max_items = std::min(std::max(options.max_batch, 1u),
                         std::max(policy.StealBatchHint(v, t), 1u));
  }
  s.batch.clear();
  const uint32_t moved = victim_queue.StealTailLocked(
      [&](const WorkItem& item) {
        if (options.break_batch_bound) {
          return true;  // ignore the migration rule: provoke the violation
        }
        const int64_t w =
            metric == LoadMetric::kTaskCount ? 1 : static_cast<int64_t>(item.weight);
        if (!policy.ShouldMigrate(w, v, t)) {
          return false;
        }
        v -= w;  // returning true commits the removal; keep the running
        t += w;  // loads exact for the next candidate
        return true;
      },
      max_items, s.batch);
  if (moved == 0) {
    ++counters.failed_no_task;
    return false;
  }
  thief_queue.PushBatchLocked(s.batch.data(), moved);
  ++counters.successes;
  counters.items_stolen += moved;
  if (observation_out != nullptr) {
    observation_out->item_id = s.batch.front().id;
    observation_out->items_moved = moved;
    observation_out->seqlock_writes =
        victim_queue.SeqlockWriteCount() + thief_queue.SeqlockWriteCount() - writes_before;
    observation_out->victim_tasks_after = victim_queue.ExactLoadLocked().task_count;
    observation_out->thief_tasks_after = thief_queue.ExactLoadLocked().task_count;
    observation_out->victim_finished_delta = 0;  // victim frozen under its lock
    observation_out->victim_dealt_delta = 0;
  }
  return true;
}

OPTSCHED_HOT_PATH bool ConcurrentMachine::TryStealChaseLev(
    const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot, CpuId victim,
    const StealOptions& options, StealCounters& counters, const Topology* topology,
    StealObservation* observation_out, StealScratch& s) {
  ConcurrentRunQueue& victim_queue = *queues_[victim];
  ConcurrentRunQueue& thief_queue = *queues_[thief];

  // --- Optimistic re-check (no locks exist to take) --------------------------
  // Refresh the pair's published loads; other cores stay as the (stale)
  // snapshot observed them. This is the same CanSteal gate the locked
  // backend runs under its two locks — here it runs on loads that can go
  // stale again immediately, which is fine: the per-item gate below plus the
  // top CAS carry the actual safety argument.
  LoadSnapshot& fresh_snapshot = s.locked_snapshot;
  fresh_snapshot.task_count = snapshot.task_count;
  fresh_snapshot.weighted_load = snapshot.weighted_load;
  const LoadPair victim_load = victim_queue.ReadLoad();
  const LoadPair thief_load = thief_queue.ReadLoad();
  fresh_snapshot.task_count[victim] = victim_load.task_count;
  fresh_snapshot.weighted_load[victim] = victim_load.weighted_load;
  fresh_snapshot.task_count[thief] = thief_load.task_count;
  fresh_snapshot.weighted_load[thief] = thief_load.weighted_load;
  const SelectionView fresh_view{.self = thief, .snapshot = fresh_snapshot,
                                 .topology = topology};
  if (options.recheck && !policy.CanSteal(fresh_view, victim)) {
    ++counters.failed_recheck;
    return false;
  }

  const uint64_t finished_before = victim_queue.FinishedCount();
  const uint64_t dealt_before = victim_queue.DealtCount();
  const LoadMetric metric = policy.metric();
  const int64_t v0 = metric == LoadMetric::kTaskCount ? victim_load.task_count
                                                      : victim_load.weighted_load;
  const int64_t t0 = metric == LoadMetric::kTaskCount ? thief_load.task_count
                                                      : thief_load.weighted_load;
  uint32_t max_items;
  if (options.break_batch_bound) {
    max_items = ~0u;  // mc fault mode: strip the victim bare
  } else {
    max_items = std::min(std::max(options.max_batch, 1u),
                         std::max(policy.StealBatchHint(v0, t0), 1u));
  }

  s.batch.clear();
  uint32_t moved = 0;
  int64_t moved_metric = 0;   // what the batch has added to the thief so far
  int64_t moved_weight = 0;   // victim-side weight to commit after the loop
  bool cas_lost = false;
  const int64_t victim_running_inbox =
      victim_queue.RunningRelaxed() + victim_queue.InboxCountRelaxed();
  while (moved < max_items) {
    const ChaseLevDeque::TopPeek peek = victim_queue.PeekSteal();
    if (!peek.found) {
      break;
    }
    if (!options.break_batch_bound) {
      // Per-item migration gate, anchored to the SAME top index the commit
      // CAS validates: if TakeSteal succeeds, no competing thief (and no
      // owner-last-item pop) intervened since this peek, so the gate judged
      // the state it acted on. The victim load is recomputed from the peek
      // each iteration — peek.size counts exactly the still-stealable items
      // at that top, plus the owner's current item and any inbox residents.
      // Owner progress between gate and commit can only LOWER the victim's
      // count via FinishCurrent or TakeOwnerBatch, which the steal-safety
      // property excuses through victim_finished_delta / victim_dealt_delta.
      const int64_t w =
          metric == LoadMetric::kTaskCount ? 1 : static_cast<int64_t>(peek.item.weight);
      int64_t v_now;
      if (metric == LoadMetric::kTaskCount) {
        // running/inbox are sampled once per batch (they are stale
        // observations either way); the per-item freshness comes from
        // peek.size, which is exact at the top index the commit validates.
        v_now = peek.size + victim_running_inbox;
      } else {
        // Deferred accounting: ReadLoad still counts this batch's takes, so
        // subtract them to judge the load a fresh observer would see.
        v_now = victim_queue.ReadLoad().weighted_load - moved_weight;
      }
      const int64_t t_now = t0 + moved_metric;
      if (!policy.ShouldMigrate(w, v_now, t_now)) {
        break;
      }
    }
    if (!victim_queue.TakeStealDeferred(peek)) {
      cas_lost = true;  // top moved since the peek: a stale observation
      break;
    }
    // optsched-lint: allow(hot-path-alloc): scratch batch at high-water capacity after warmup (E14 alloc audit)
    s.batch.push_back(peek.item);
    ++moved;
    moved_weight += static_cast<int64_t>(peek.item.weight);
    moved_metric +=
        metric == LoadMetric::kTaskCount ? 1 : static_cast<int64_t>(peek.item.weight);
  }
  victim_queue.CommitStealAccounting(moved, moved_weight);

  if (moved == 0) {
    if (cas_lost) {
      // The lock-free analogue of losing the locked re-check: another core
      // changed the state between observation and commit. Counted as
      // failed_recheck so ablation comparisons line up across backends.
      ++counters.failed_recheck;
    } else {
      ++counters.failed_no_task;
    }
    return false;
  }
  // The thief owns its queue: landing the batch is an owner push.
  thief_queue.PushBatchOwner(s.batch.data(), moved);
  ++counters.successes;
  counters.items_stolen += moved;
  if (observation_out != nullptr) {
    observation_out->item_id = s.batch.front().id;
    observation_out->items_moved = moved;
    observation_out->seqlock_writes = 0;  // no seqlock on this backend
    // Read tasks BEFORE the finished/dealt counts: a FinishCurrent or
    // TakeOwnerBatch landing between the reads then inflates the sum (safe
    // direction — the property asserts a lower bound) instead of deflating
    // it into a spurious violation.
    observation_out->victim_tasks_after = victim_queue.TasksRelaxed();
    observation_out->thief_tasks_after = thief_queue.TasksRelaxed();
    observation_out->victim_finished_delta =
        static_cast<int64_t>(victim_queue.FinishedCount() - finished_before);
    observation_out->victim_dealt_delta =
        static_cast<int64_t>(victim_queue.DealtCount() - dealt_before);
  }
  return true;
}

}  // namespace optsched::runtime
