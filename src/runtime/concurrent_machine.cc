#include "src/runtime/concurrent_machine.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "src/base/check.h"

namespace optsched::runtime {

void ConcurrentRunQueue::PublishLocked() {
  LoadPair load;
  load.task_count = static_cast<int64_t>(ready_.size()) + (running_ ? 1 : 0);
  load.weighted_load = queued_weight_ + running_weight_;
  published_.Write(load);
}

std::optional<WorkItem> ConcurrentRunQueue::PopForRun() {
  std::lock_guard<SpinLock> guard(lock_);
  if (ready_.empty()) {
    return std::nullopt;
  }
  WorkItem item = ready_.front();
  ready_.pop_front();
  queued_weight_ -= item.weight;
  OPTSCHED_CHECK_MSG(!running_, "owner already runs an item");
  running_ = true;
  running_weight_ = item.weight;
  PublishLocked();
  return item;
}

void ConcurrentRunQueue::FinishCurrent() {
  std::lock_guard<SpinLock> guard(lock_);
  OPTSCHED_CHECK(running_);
  running_ = false;
  running_weight_ = 0;
  PublishLocked();
}

void ConcurrentRunQueue::Push(WorkItem item) {
  std::lock_guard<SpinLock> guard(lock_);
  PushLocked(item);
}

LoadPair ConcurrentRunQueue::ExactLoadLocked() const {
  LoadPair load;
  load.task_count = static_cast<int64_t>(ready_.size()) + (running_ ? 1 : 0);
  load.weighted_load = queued_weight_ + running_weight_;
  return load;
}

std::optional<WorkItem> ConcurrentRunQueue::StealTailLocked(
    const std::function<bool(const WorkItem&)>& eligible) {
  for (auto it = ready_.rbegin(); it != ready_.rend(); ++it) {
    if (eligible(*it)) {
      WorkItem item = *it;
      ready_.erase(std::next(it).base());
      queued_weight_ -= item.weight;
      PublishLocked();
      return item;
    }
  }
  return std::nullopt;
}

void ConcurrentRunQueue::PushLocked(WorkItem item) {
  queued_weight_ += item.weight;
  ready_.push_back(item);
  PublishLocked();
}

ConcurrentMachine::ConcurrentMachine(uint32_t num_queues) {
  OPTSCHED_CHECK(num_queues > 0);
  queues_.reserve(num_queues);
  for (uint32_t i = 0; i < num_queues; ++i) {
    queues_.push_back(std::make_unique<ConcurrentRunQueue>());
  }
}

LoadSnapshot ConcurrentMachine::Snapshot() const {
  LoadSnapshot snap;
  snap.task_count.reserve(queues_.size());
  snap.weighted_load.reserve(queues_.size());
  for (const auto& queue : queues_) {
    const LoadPair load = queue->ReadLoad();
    snap.task_count.push_back(load.task_count);
    snap.weighted_load.push_back(load.weighted_load);
  }
  return snap;
}

LoadSnapshot ConcurrentMachine::LockedSnapshot() {
  // Lock everything in index order (the machine-wide ranking): exact, but
  // owners stall on their own queue lock for the duration — the cost the
  // paper's design deliberately avoids.
  for (auto& queue : queues_) {
    queue->lock().lock();
  }
  LoadSnapshot snap;
  for (const auto& queue : queues_) {
    const LoadPair load = queue->ExactLoadLocked();
    snap.task_count.push_back(load.task_count);
    snap.weighted_load.push_back(load.weighted_load);
  }
  for (auto it = queues_.rbegin(); it != queues_.rend(); ++it) {
    (*it)->lock().unlock();
  }
  return snap;
}

uint64_t ConcurrentMachine::TotalSeqlockReadRetries() const {
  uint64_t total = 0;
  for (const auto& queue : queues_) {
    total += queue->SeqlockReadRetries();
  }
  return total;
}

bool ConcurrentMachine::TrySteal(const BalancePolicy& policy, CpuId thief,
                                 const LoadSnapshot& snapshot, Rng& rng, bool recheck,
                                 StealCounters& counters, const Topology* topology,
                                 CpuId* victim_out, StealObservation* observation_out) {
  // --- Selection phase (no locks) -------------------------------------------
  const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
  const std::vector<CpuId> candidates = policy.FilterCandidates(view);  // step 1
  if (candidates.empty()) {
    ++counters.empty_filter;
    return false;
  }
  const CpuId victim = policy.SelectCore(view, candidates, rng);  // step 2
  OPTSCHED_CHECK(victim != thief);
  if (victim_out != nullptr) {
    *victim_out = victim;
  }
  ++counters.attempts;

  // --- Stealing phase (two locks, queue-index order) -------------------------
  ConcurrentRunQueue& victim_queue = *queues_[victim];
  ConcurrentRunQueue& thief_queue = *queues_[thief];
  // Index order, the machine-wide lock ranking (see DualLockGuard).
  DualLockGuard guard(thief < victim ? thief_queue.lock() : victim_queue.lock(),
                      thief < victim ? victim_queue.lock() : thief_queue.lock());

  // Exact loads for the locked pair; other cores stay as the (stale) snapshot
  // observed them — a thief can only be sure of what it locked.
  LoadSnapshot locked_snapshot = snapshot;
  const LoadPair victim_load = victim_queue.ExactLoadLocked();
  const LoadPair thief_load = thief_queue.ExactLoadLocked();
  locked_snapshot.task_count[victim] = victim_load.task_count;
  locked_snapshot.weighted_load[victim] = victim_load.weighted_load;
  locked_snapshot.task_count[thief] = thief_load.task_count;
  locked_snapshot.weighted_load[thief] = thief_load.weighted_load;

  const SelectionView locked_view{.self = thief, .snapshot = locked_snapshot,
                                  .topology = topology};
  if (recheck && !policy.CanSteal(locked_view, victim)) {
    ++counters.failed_recheck;
    return false;
  }

  const LoadMetric metric = policy.metric();
  const int64_t v = metric == LoadMetric::kTaskCount ? victim_load.task_count
                                                     : victim_load.weighted_load;
  const int64_t t = metric == LoadMetric::kTaskCount ? thief_load.task_count
                                                     : thief_load.weighted_load;
  std::optional<WorkItem> stolen =
      victim_queue.StealTailLocked([&](const WorkItem& item) {
        const int64_t w =
            metric == LoadMetric::kTaskCount ? 1 : static_cast<int64_t>(item.weight);
        return policy.ShouldMigrate(w, v, t);
      });
  if (!stolen.has_value()) {
    ++counters.failed_no_task;
    return false;
  }
  thief_queue.PushLocked(*stolen);
  ++counters.successes;
  if (observation_out != nullptr) {
    observation_out->item_id = stolen->id;
    observation_out->victim_tasks_after = victim_queue.ExactLoadLocked().task_count;
    observation_out->thief_tasks_after = thief_queue.ExactLoadLocked().task_count;
  }
  return true;
}

}  // namespace optsched::runtime
