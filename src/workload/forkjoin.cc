#include "src/workload/forkjoin.h"

#include <algorithm>

#include "src/base/check.h"

namespace optsched::workload {

using task::TaskContext;
using task::TaskNode;

namespace {

// Calibrated leaf spin for the skewed tree (same opaque-volatile technique
// as the executor's DoWork, so the optimizer cannot delete the work).
OPTSCHED_HOT_PATH void SpinWork(uint64_t spins) {
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < spins; ++i) {
    sink = sink + i;
  }
}

// --- fib ---------------------------------------------------------------------
// env: [0] = n, [1] = result slot (uint64_t*), [2] = cutoff.
// Continuation env: [0] = left result, [1] = right result, [2] = result slot.

OPTSCHED_HOT_PATH void FibAdd(TaskContext& /*ctx*/, TaskNode& self) {
  *reinterpret_cast<uint64_t*>(self.env[2]) = self.env[0] + self.env[1];
}

OPTSCHED_HOT_PATH void FibTask(TaskContext& ctx, TaskNode& self) {
  const uint64_t n = self.env[0];
  const uint64_t cutoff = self.env[2];
  if (n < cutoff) {
    *reinterpret_cast<uint64_t*>(self.env[1]) = FibSequential(n);
    return;
  }
  TaskContext::Fork2Nodes fork = ctx.Fork2(FibAdd, FibTask, FibTask);
  fork.cont.env[2] = self.env[1];  // where the sum goes
  fork.left.env[0] = n - 1;
  fork.left.env[1] = reinterpret_cast<uint64_t>(&fork.cont.env[0]);
  fork.left.env[2] = cutoff;
  fork.right.env[0] = n - 2;
  fork.right.env[1] = reinterpret_cast<uint64_t>(&fork.cont.env[1]);
  fork.right.env[2] = cutoff;
  ctx.Spawn(fork.left);
  ctx.Spawn(fork.right);
}

// --- mergesort ---------------------------------------------------------------
// env: [0] = data, [1] = scratch, [2] = lo, [3] = hi (or mid for the
// continuation), [4] = cutoff (or hi for the continuation).

OPTSCHED_HOT_PATH void MergeCont(TaskContext& /*ctx*/, TaskNode& self) {
  uint64_t* data = reinterpret_cast<uint64_t*>(self.env[0]);
  uint64_t* scratch = reinterpret_cast<uint64_t*>(self.env[1]);
  const uint64_t lo = self.env[2];
  const uint64_t mid = self.env[3];
  const uint64_t hi = self.env[4];
  uint64_t a = lo;
  uint64_t b = mid;
  for (uint64_t out = lo; out < hi; ++out) {
    if (a < mid && (b >= hi || data[a] <= data[b])) {
      scratch[out] = data[a++];
    } else {
      scratch[out] = data[b++];
    }
  }
  std::copy(scratch + lo, scratch + hi, data + lo);
}

OPTSCHED_HOT_PATH void MergesortTask(TaskContext& ctx, TaskNode& self) {
  uint64_t* data = reinterpret_cast<uint64_t*>(self.env[0]);
  const uint64_t lo = self.env[2];
  const uint64_t hi = self.env[3];
  const uint64_t cutoff = self.env[4];
  if (hi - lo <= cutoff) {
    std::sort(data + lo, data + hi);
    return;
  }
  const uint64_t mid = lo + (hi - lo) / 2;
  TaskContext::Fork2Nodes fork = ctx.Fork2(MergeCont, MergesortTask, MergesortTask);
  fork.cont.env[0] = self.env[0];
  fork.cont.env[1] = self.env[1];
  fork.cont.env[2] = lo;
  fork.cont.env[3] = mid;
  fork.cont.env[4] = hi;
  fork.left.env[0] = self.env[0];
  fork.left.env[1] = self.env[1];
  fork.left.env[2] = lo;
  fork.left.env[3] = mid;
  fork.left.env[4] = cutoff;
  fork.right.env[0] = self.env[0];
  fork.right.env[1] = self.env[1];
  fork.right.env[2] = mid;
  fork.right.env[3] = hi;
  fork.right.env[4] = cutoff;
  ctx.Spawn(fork.left);
  ctx.Spawn(fork.right);
}

// --- prefix scan -------------------------------------------------------------
// Blocked two-phase scan (Cole–Ramachandran resource-oblivious shape: the
// decomposition is by PROBLEM size, oblivious to the worker count).
// Upsweep children sum their block; the mid continuation exclusive-scans the
// block sums sequentially (B words) and fans out the downsweep, whose
// children produce the within-block inclusive scan plus offset.
// env: [0] = data, [1] = n, [2] = block, [3] = block_sums; per-block
// children add [4] = block index.

uint64_t ScanBlocks(uint64_t n, uint64_t block) { return (n + block - 1) / block; }

OPTSCHED_HOT_PATH void ScanSumBlock(TaskContext& /*ctx*/, TaskNode& self) {
  const uint64_t* data = reinterpret_cast<const uint64_t*>(self.env[0]);
  const uint64_t n = self.env[1];
  const uint64_t block = self.env[2];
  uint64_t* sums = reinterpret_cast<uint64_t*>(self.env[3]);
  const uint64_t index = self.env[4];
  const uint64_t begin = index * block;
  const uint64_t end = std::min(n, begin + block);
  uint64_t total = 0;
  for (uint64_t i = begin; i < end; ++i) {
    total += data[i];
  }
  sums[index] = total;
}

OPTSCHED_HOT_PATH void ScanAddBlock(TaskContext& /*ctx*/, TaskNode& self) {
  uint64_t* data = reinterpret_cast<uint64_t*>(self.env[0]);
  const uint64_t n = self.env[1];
  const uint64_t block = self.env[2];
  const uint64_t* sums = reinterpret_cast<const uint64_t*>(self.env[3]);
  const uint64_t index = self.env[4];
  const uint64_t begin = index * block;
  const uint64_t end = std::min(n, begin + block);
  uint64_t running = sums[index];  // exclusive offset of this block
  for (uint64_t i = begin; i < end; ++i) {
    running += data[i];
    data[i] = running;
  }
}

OPTSCHED_HOT_PATH void ScanDone(TaskContext& /*ctx*/, TaskNode& /*self*/) {}

OPTSCHED_HOT_PATH void ScanMid(TaskContext& ctx, TaskNode& self) {
  const uint64_t n = self.env[1];
  const uint64_t block = self.env[2];
  uint64_t* sums = reinterpret_cast<uint64_t*>(self.env[3]);
  const uint64_t blocks = ScanBlocks(n, block);
  uint64_t carry = 0;
  for (uint64_t i = 0; i < blocks; ++i) {
    const uint64_t total = sums[i];
    sums[i] = carry;  // exclusive scan in place
    carry += total;
  }
  TaskNode& done = ctx.ForkN(ScanDone, static_cast<uint32_t>(blocks));
  for (uint64_t i = 0; i < blocks; ++i) {
    TaskNode& child = ctx.NewChild(ScanAddBlock, done);
    child.env[0] = self.env[0];
    child.env[1] = n;
    child.env[2] = block;
    child.env[3] = self.env[3];
    child.env[4] = i;
    ctx.Spawn(child);
  }
}

OPTSCHED_HOT_PATH void ScanRoot(TaskContext& ctx, TaskNode& self) {
  uint64_t* data = reinterpret_cast<uint64_t*>(self.env[0]);
  const uint64_t n = self.env[1];
  const uint64_t block = self.env[2];
  const uint64_t blocks = ScanBlocks(n, block);
  if (blocks <= 1) {
    uint64_t running = 0;
    for (uint64_t i = 0; i < n; ++i) {
      running += data[i];
      data[i] = running;
    }
    return;
  }
  TaskNode& mid = ctx.ForkN(ScanMid, static_cast<uint32_t>(blocks));
  mid.env[0] = self.env[0];
  mid.env[1] = n;
  mid.env[2] = block;
  mid.env[3] = self.env[3];
  for (uint64_t i = 0; i < blocks; ++i) {
    TaskNode& child = ctx.NewChild(ScanSumBlock, mid);
    child.env[0] = self.env[0];
    child.env[1] = n;
    child.env[2] = block;
    child.env[3] = self.env[3];
    child.env[4] = i;
    ctx.Spawn(child);
  }
}

// --- skewed spine tree -------------------------------------------------------
// env: [0] = remaining spine depth (>= 1), [1] = leaves per level,
// [2] = leaf spins.

OPTSCHED_HOT_PATH void SkewNop(TaskContext& /*ctx*/, TaskNode& /*self*/) {}

OPTSCHED_HOT_PATH void SkewLeaf(TaskContext& /*ctx*/, TaskNode& self) {
  SpinWork(self.env[0]);
}

OPTSCHED_HOT_PATH void SkewedTask(TaskContext& ctx, TaskNode& self) {
  const uint64_t depth = self.env[0];
  const uint64_t leaves = self.env[1];
  const uint64_t leaf_spins = self.env[2];
  const bool has_spine_child = depth > 1;
  const uint32_t children = static_cast<uint32_t>(leaves + (has_spine_child ? 1 : 0));
  TaskNode& cont = ctx.ForkN(SkewNop, children);
  // Spine first: the deque bottom (owner LIFO) keeps this worker descending
  // the spine while the heavy leaves pile up as the stealable tail — the
  // skew that separates steal-half from steal-one.
  if (has_spine_child) {
    TaskNode& spine = ctx.NewChild(SkewedTask, cont);
    spine.env[0] = depth - 1;
    spine.env[1] = leaves;
    spine.env[2] = leaf_spins;
    ctx.Spawn(spine);
  }
  for (uint64_t i = 0; i < leaves; ++i) {
    TaskNode& leaf = ctx.NewChild(SkewLeaf, cont);
    leaf.env[0] = leaf_spins;
    ctx.Spawn(leaf);
  }
}

}  // namespace

uint64_t FibSequential(uint64_t n) {
  return n < 2 ? n : FibSequential(n - 1) + FibSequential(n - 2);
}

runtime::WorkItem MakeFibRoot(task::TaskGraph& graph, uint64_t n, uint64_t cutoff,
                              uint64_t* result) {
  OPTSCHED_CHECK(result != nullptr);
  OPTSCHED_CHECK(cutoff >= 2);
  TaskNode& root = graph.NewRoot(FibTask);
  root.env[0] = n;
  root.env[1] = reinterpret_cast<uint64_t>(result);
  root.env[2] = cutoff;
  return graph.ItemFor(root);
}

runtime::WorkItem MakeMergesortRoot(task::TaskGraph& graph, uint64_t* data,
                                    uint64_t* scratch, uint64_t n, uint64_t cutoff) {
  OPTSCHED_CHECK(data != nullptr && scratch != nullptr);
  OPTSCHED_CHECK(n >= 1 && cutoff >= 1);
  TaskNode& root = graph.NewRoot(MergesortTask);
  root.env[0] = reinterpret_cast<uint64_t>(data);
  root.env[1] = reinterpret_cast<uint64_t>(scratch);
  root.env[2] = 0;
  root.env[3] = n;
  root.env[4] = cutoff;
  return graph.ItemFor(root);
}

runtime::WorkItem MakeScanRoot(task::TaskGraph& graph, uint64_t* data, uint64_t n,
                               uint64_t block, uint64_t* block_sums) {
  OPTSCHED_CHECK(data != nullptr && block_sums != nullptr);
  OPTSCHED_CHECK(n >= 1 && block >= 1);
  TaskNode& root = graph.NewRoot(ScanRoot);
  root.env[0] = reinterpret_cast<uint64_t>(data);
  root.env[1] = n;
  root.env[2] = block;
  root.env[3] = reinterpret_cast<uint64_t>(block_sums);
  return graph.ItemFor(root);
}

runtime::WorkItem MakeSkewedRoot(task::TaskGraph& graph, uint64_t depth, uint64_t leaves,
                                 uint64_t leaf_spins) {
  OPTSCHED_CHECK(depth >= 1 && leaves >= 1);
  TaskNode& root = graph.NewRoot(SkewedTask);
  root.env[0] = depth;
  root.env[1] = leaves;
  root.env[2] = leaf_spins;
  return graph.ItemFor(root);
}

}  // namespace optsched::workload
