// Workload recording and replay.
//
// A WorkloadTrace is an explicit list of task submissions (time, behaviour,
// placement hint). Capturing a generated workload into a trace and replaying
// it under different policies gives *paired* comparisons — identical
// arrivals, identical service demands — which is how the E6-style
// policy-vs-policy tables avoid confounding the workload with the scheduler.
// Traces serialize to a line-oriented text format for archival:
//
//   # optsched-workload-v1
//   submit when_us nice home_node service_us burst_us mean_block_us mask hint
//
// (hint is -1 when absent; mask is the affinity bitmask, 0 = unrestricted.)

#ifndef OPTSCHED_SRC_WORKLOAD_REPLAY_H_
#define OPTSCHED_SRC_WORKLOAD_REPLAY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace optsched::workload {

struct SubmitRecord {
  sim::SimTime when = 0;
  sim::TaskSpec spec;
  std::optional<CpuId> cpu_hint;
};

class WorkloadTrace {
 public:
  WorkloadTrace() = default;

  void Add(sim::SimTime when, const sim::TaskSpec& spec,
           std::optional<CpuId> cpu_hint = std::nullopt);

  const std::vector<SubmitRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  // Submits every record into the simulator (which must be at time 0).
  void SubmitAll(sim::Simulator& simulator) const;

  // Text round-trip.
  std::string Serialize() const;
  // Returns nullopt and sets `error` (if non-null) on malformed input.
  static std::optional<WorkloadTrace> Parse(std::string_view text, std::string* error = nullptr);

  // Capture helpers: generate a workload deterministically into a trace
  // instead of submitting it directly.
  static WorkloadTrace FromStaticImbalance(const StaticImbalanceConfig& config,
                                           const Topology& topology);
  static WorkloadTrace FromOltp(const OltpConfig& config, const Topology& topology);
  static WorkloadTrace FromPoisson(const PoissonConfig& config, const Topology& topology);

 private:
  std::vector<SubmitRecord> records_;
};

}  // namespace optsched::workload

#endif  // OPTSCHED_SRC_WORKLOAD_REPLAY_H_
