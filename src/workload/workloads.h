// Workload generators for the simulator.
//
// These recreate the imbalance shapes behind the paper's motivation (§1):
// scientific fork-join applications that suffer "many-fold performance
// degradation" and database workloads losing "up to 25% ... throughput" when
// cores idle while runqueues hold work (Lozi et al., EuroSys'16). Each
// generator is deterministic given its seed.

#ifndef OPTSCHED_SRC_WORKLOAD_WORKLOADS_H_
#define OPTSCHED_SRC_WORKLOAD_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/simulator.h"

namespace optsched::workload {

// --- Static imbalance --------------------------------------------------------
// `num_tasks` CPU-bound tasks of `service_us` each, all submitted at t=0 onto
// a small subset of cores (round-robin over the first `initial_cpus` CPUs).
// Measures pure rebalancing ability: makespan of an ideal work-conserving
// scheduler approaches ceil(num_tasks / num_cpus) * service_us.
struct StaticImbalanceConfig {
  uint32_t num_tasks = 64;
  uint64_t service_us = 100'000;
  uint32_t initial_cpus = 1;
};
void SubmitStaticImbalance(sim::Simulator& simulator, const StaticImbalanceConfig& config);

// --- Fork-join scientific phases ----------------------------------------------
// `num_phases` barrier-synchronized phases; each phase forks
// `tasks_per_phase` CPU-bound tasks (duration jittered up to `jitter_frac`)
// from a master core, and the next phase starts only when all tasks of the
// current phase completed. Wake placement mistakes or missed steals delay the
// barrier by the slowest task — the "many-fold" degradation shape.
struct ForkJoinConfig {
  uint32_t num_phases = 8;
  uint32_t tasks_per_phase = 64;
  uint64_t task_service_us = 50'000;
  double jitter_frac = 0.2;
  CpuId master_cpu = 0;
  uint64_t seed = 42;
};
// Installs the phase driver (uses Simulator::SetOnTaskExit) and submits the
// first phase. Returns a keep-alive handle that must outlive Run().
std::shared_ptr<void> InstallForkJoin(sim::Simulator& simulator, const ForkJoinConfig& config);

// --- OLTP-style database workers ----------------------------------------------
// `num_workers` long-lived workers; each executes transactions: a CPU burst
// of `txn_service_us` followed by an exponential I/O wait of
// `mean_io_wait_us`. Workers are born on their home node (spread uniformly).
// Throughput = completed bursts; the paper's database number is the ~25%
// throughput loss when balancing fails to spread workers.
struct OltpConfig {
  uint32_t num_workers = 64;
  uint64_t txn_service_us = 1'000;
  uint64_t mean_io_wait_us = 3'000;
  uint64_t duration_us = 5'000'000;  // total worker lifetime
  uint64_t seed = 42;
};
void SubmitOltp(sim::Simulator& simulator, const OltpConfig& config);

// --- Poisson open system --------------------------------------------------------
// Tasks arrive with exponential inter-arrival times (rate = `arrivals_per_sec`)
// and exponential service (mean `mean_service_us`), submitted to a uniformly
// random home node. Used for latency measurements under churn.
struct PoissonConfig {
  double arrivals_per_sec = 2000.0;
  uint64_t mean_service_us = 8'000;
  uint64_t duration_us = 2'000'000;
  uint64_t seed = 42;
};
void SubmitPoisson(sim::Simulator& simulator, const PoissonConfig& config);

}  // namespace optsched::workload

#endif  // OPTSCHED_SRC_WORKLOAD_WORKLOADS_H_
