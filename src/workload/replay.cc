#include "src/workload/replay.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/str.h"
#include "src/workload/workloads.h"

namespace optsched::workload {

void WorkloadTrace::Add(sim::SimTime when, const sim::TaskSpec& spec,
                        std::optional<CpuId> cpu_hint) {
  records_.push_back(SubmitRecord{when, spec, cpu_hint});
}

void WorkloadTrace::SubmitAll(sim::Simulator& simulator) const {
  for (const SubmitRecord& record : records_) {
    simulator.Submit(record.spec, record.when, record.cpu_hint);
  }
}

std::string WorkloadTrace::Serialize() const {
  std::string out = "# optsched-workload-v1\n";
  for (const SubmitRecord& r : records_) {
    out += StrFormat("submit %llu %d %u %llu %llu %llu %llu %lld\n",
                     static_cast<unsigned long long>(r.when), r.spec.nice, r.spec.home_node,
                     static_cast<unsigned long long>(r.spec.total_service_us),
                     static_cast<unsigned long long>(r.spec.burst_us),
                     static_cast<unsigned long long>(r.spec.mean_block_us),
                     static_cast<unsigned long long>(r.spec.allowed_mask),
                     r.cpu_hint.has_value() ? static_cast<long long>(*r.cpu_hint) : -1ll);
  }
  return out;
}

std::optional<WorkloadTrace> WorkloadTrace::Parse(std::string_view text, std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<WorkloadTrace> {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  WorkloadTrace trace;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (!StartsWith(line, "submit ")) {
      return fail(StrFormat("line %zu: expected 'submit ...'", line_number));
    }
    unsigned long long when = 0;
    unsigned long long service = 0;
    unsigned long long burst = 0;
    unsigned long long block = 0;
    unsigned long long mask = 0;
    int nice = 0;
    unsigned node = 0;
    long long hint = -1;
    const int matched =
        std::sscanf(std::string(line).c_str(), "submit %llu %d %u %llu %llu %llu %llu %lld",
                    &when, &nice, &node, &service, &burst, &block, &mask, &hint);
    if (matched != 8) {
      return fail(StrFormat("line %zu: malformed submit record (%d of 8 fields)", line_number,
                            matched));
    }
    if (nice < kMinNice || nice > kMaxNice) {
      return fail(StrFormat("line %zu: nice %d out of range", line_number, nice));
    }
    if (service == 0) {
      return fail(StrFormat("line %zu: zero service time", line_number));
    }
    sim::TaskSpec spec;
    spec.nice = nice;
    spec.home_node = node;
    spec.total_service_us = service;
    spec.burst_us = burst;
    spec.mean_block_us = block;
    spec.allowed_mask = mask;
    trace.Add(when, spec,
              hint >= 0 ? std::make_optional(static_cast<CpuId>(hint)) : std::nullopt);
  }
  return trace;
}

WorkloadTrace WorkloadTrace::FromStaticImbalance(const StaticImbalanceConfig& config,
                                                 const Topology& topology) {
  OPTSCHED_CHECK(config.initial_cpus > 0 && config.initial_cpus <= topology.num_cpus());
  WorkloadTrace trace;
  for (uint32_t i = 0; i < config.num_tasks; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = config.service_us;
    const CpuId cpu = i % config.initial_cpus;
    spec.home_node = topology.NodeOf(cpu);
    trace.Add(0, spec, cpu);
  }
  return trace;
}

WorkloadTrace WorkloadTrace::FromOltp(const OltpConfig& config, const Topology& topology) {
  WorkloadTrace trace;
  const uint32_t nodes = topology.num_nodes();
  for (uint32_t i = 0; i < config.num_workers; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = std::max<uint64_t>(
        config.txn_service_us,
        config.duration_us * config.txn_service_us /
            std::max<uint64_t>(1, config.txn_service_us + config.mean_io_wait_us));
    spec.burst_us = config.txn_service_us;
    spec.mean_block_us = config.mean_io_wait_us;
    spec.home_node = i % nodes;
    trace.Add(0, spec);
  }
  return trace;
}

WorkloadTrace WorkloadTrace::FromPoisson(const PoissonConfig& config,
                                         const Topology& topology) {
  WorkloadTrace trace;
  Rng rng(config.seed);
  const double rate_per_us = config.arrivals_per_sec / 1e6;
  const uint32_t nodes = topology.num_nodes();
  double time_us = 0.0;
  for (;;) {
    time_us += rng.NextExponential(rate_per_us);
    if (time_us >= static_cast<double>(config.duration_us)) {
      return trace;
    }
    sim::TaskSpec spec;
    spec.total_service_us = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               rng.NextExponential(1.0 / static_cast<double>(config.mean_service_us))));
    spec.home_node = static_cast<NodeId>(rng.NextBelow(nodes));
    trace.Add(static_cast<sim::SimTime>(time_us), spec);
  }
}

}  // namespace optsched::workload
