#include "src/workload/workloads.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/workload/replay.h"

namespace optsched::workload {

void SubmitStaticImbalance(sim::Simulator& simulator, const StaticImbalanceConfig& config) {
  OPTSCHED_CHECK(config.initial_cpus > 0);
  OPTSCHED_CHECK(config.initial_cpus <= simulator.topology().num_cpus());
  WorkloadTrace::FromStaticImbalance(config, simulator.topology()).SubmitAll(simulator);
}

namespace {

// Fork-join phase driver: counts phase completions and forks the next phase
// once the barrier is reached. Owned by the shared_ptr handle returned to the
// caller so the callback state outlives Run().
struct ForkJoinDriver {
  ForkJoinConfig config;
  sim::Simulator* simulator = nullptr;
  Rng rng;
  uint32_t phase = 0;
  uint32_t outstanding = 0;

  explicit ForkJoinDriver(const ForkJoinConfig& cfg, sim::Simulator* s)
      : config(cfg), simulator(s), rng(cfg.seed) {}

  void ForkPhase(sim::SimTime now) {
    ++phase;
    outstanding = config.tasks_per_phase;
    for (uint32_t i = 0; i < config.tasks_per_phase; ++i) {
      sim::TaskSpec spec;
      const double jitter =
          1.0 + config.jitter_frac * (2.0 * rng.NextDouble() - 1.0);
      spec.total_service_us = std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(config.task_service_us) * jitter));
      spec.home_node = simulator->topology().NodeOf(config.master_cpu);
      // All forks land where the master runs: the canonical fork-join
      // imbalance the balancer must spread out.
      simulator->Submit(spec, now, config.master_cpu);
    }
  }

  void OnExit(sim::SimTime now) {
    OPTSCHED_CHECK(outstanding > 0);
    if (--outstanding == 0 && phase < config.num_phases) {
      ForkPhase(now);
    }
  }
};

}  // namespace

std::shared_ptr<void> InstallForkJoin(sim::Simulator& simulator, const ForkJoinConfig& config) {
  OPTSCHED_CHECK(config.num_phases > 0 && config.tasks_per_phase > 0);
  auto driver = std::make_shared<ForkJoinDriver>(config, &simulator);
  simulator.SetOnTaskExit([driver](TaskId, sim::SimTime now) { driver->OnExit(now); });
  driver->ForkPhase(0);
  return driver;
}

void SubmitOltp(sim::Simulator& simulator, const OltpConfig& config) {
  WorkloadTrace::FromOltp(config, simulator.topology()).SubmitAll(simulator);
}

void SubmitPoisson(sim::Simulator& simulator, const PoissonConfig& config) {
  WorkloadTrace::FromPoisson(config, simulator.topology()).SubmitAll(simulator);
}

}  // namespace optsched::workload
