// Recursive fork-join kernels on the executor (docs/tasks.md).
//
// The classic structured-parallelism workloads, ported onto src/task so the
// steal ablations finally run against dynamically spawned, tree-shaped work
// instead of pre-seeded flat batches:
//
//   * fib(n) with a sequential cutoff — the canonical binary spawn tree,
//     maximally skewless; the rooted-tree steal bound's reference workload
//     (Leiserson/Schardl/Suksompong).
//   * divide-and-conquer mergesort — binary tree with real memory traffic
//     and a sequential merge continuation per internal node.
//   * parallel prefix scan — blocked two-phase upsweep/downsweep in the
//     Cole–Ramachandran resource-oblivious style: wide ForkN fan-out whose
//     task count is independent of the worker count.
//   * skewed spine tree — one deep spine, `leaves` heavy leaves per level:
//     the owner's deque holds many ready leaves at once, which is exactly
//     the shape where batched steal-half beats steal-one (bench_e16).
//
// Every builder seeds a reusable TaskGraph and returns the root item; the
// caller submits it (Executor::Seed/Submit) and runs. Buffers live with the
// caller — the kernels allocate nothing, preserving the D7 hot-path budget.

#ifndef OPTSCHED_SRC_WORKLOAD_FORKJOIN_H_
#define OPTSCHED_SRC_WORKLOAD_FORKJOIN_H_

#include <cstdint>

#include "src/runtime/work_item.h"
#include "src/task/task.h"

namespace optsched::workload {

// Sequential reference (also the leaf body below the cutoff).
uint64_t FibSequential(uint64_t n);

// fib(n): result lands in *result after the run. `cutoff` switches to
// FibSequential below it; nodes needed: 3 * I(n) + 1 where
// I(n) = I(n-1) + I(n-2) + 1, I(n < cutoff) = 0.
runtime::WorkItem MakeFibRoot(task::TaskGraph& graph, uint64_t n, uint64_t cutoff,
                              uint64_t* result);

// Sorts data[0..n) ascending. `scratch` is a caller-owned buffer of n words
// for the merge; `cutoff` switches to an insertion-free std::sort leaf.
// Nodes needed: 3 * (leaves - 1) + 1 with leaves = ceil(n / cutoff) rounded
// through the halving recursion (size for 4 * leaves to be safe).
runtime::WorkItem MakeMergesortRoot(task::TaskGraph& graph, uint64_t* data,
                                    uint64_t* scratch, uint64_t n, uint64_t cutoff);

// In-place inclusive prefix scan over data[0..n). `block_sums` is a
// caller-owned buffer of ceil(n / block) words. Two ForkN fan-outs of that
// width plus two continuations and the root: size the arena for
// 2 * ceil(n / block) + 4 nodes.
runtime::WorkItem MakeScanRoot(task::TaskGraph& graph, uint64_t* data, uint64_t n,
                               uint64_t block, uint64_t* block_sums);

// Skewed spine tree: `depth` spine nodes, each forking `leaves` leaf tasks
// of `leaf_spins` calibrated spins plus (below the bottom) one spine child.
// Nodes needed: depth * (leaves + 2) + 2.
runtime::WorkItem MakeSkewedRoot(task::TaskGraph& graph, uint64_t depth, uint64_t leaves,
                                 uint64_t leaf_spins);

}  // namespace optsched::workload

#endif  // OPTSCHED_SRC_WORKLOAD_FORKJOIN_H_
