// Structured parallelism on the executor: continuation-counted futures and
// fork-join DAGs (docs/tasks.md).
//
// The design is the continuation-passing discipline of Cilk-style runtimes,
// restated for this scheduler's optimistic queues:
//
//   * A TaskNode is a body plus a fixed block of inline argument words and an
//     atomic JOIN counter. Forking transfers the running task's completion
//     obligation to a fresh continuation node whose counter holds the child
//     count; each finishing child decrements it, and the LAST ARRIVER — on
//     whichever worker it happens to run — submits the continuation to its
//     own runqueue. No task ever waits: a worker that finishes a child goes
//     straight back to its deque, so joins cost one atomic RMW, never a
//     blocked worker (the no-worker-blocks-on-join property, discharged by
//     the mc `forkjoin` harness).
//   * Nodes come from a bump-pointer arena preallocated by the graph and
//     recycled by Reset(): after the first run, recursive decomposition
//     performs ZERO heap allocations — spawns append to a small worker-local
//     batch that flushes through Executor::SubmitFromWorker onto the owner's
//     deque-bottom push path (rule hot-path-alloc; audited by bench_e16).
//   * The graph implements runtime::TaskRunner, so the executor dispatches
//     items with WorkItem::task != 0 here instead of the calibrated spin,
//     and the conservation watchdog counts forked-but-unfired continuations
//     as pending work (OutstandingFor), mirroring the mailbox-backlog rule.
//
// Body-side invariant (continuation counting): every task either RETURNS
// COMPLETE (it forked nothing) or calls ForkN/Fork2 exactly once and spawns
// exactly the declared number of children. The counter never counts the
// forking task itself — its obligation is transferred, not joined on —
// which is what keeps "counter reaches zero" equivalent to "all inputs of
// the continuation are ready".

#ifndef OPTSCHED_SRC_TASK_TASK_H_
#define OPTSCHED_SRC_TASK_TASK_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/runtime/executor.h"
#include "src/runtime/work_item.h"

namespace optsched::task {

class TaskContext;
class TaskGraph;

// A task body. `self` carries the inline argument words (filled before the
// node was spawned, published by the queue push); helpers for forking and
// spawning live on `ctx`.
using TaskBody = void (*)(TaskContext& ctx, struct TaskNode& self);

// One node of the fork-join DAG. Exactly one cache line: body, links, join
// counter, and five inline argument/result words — big enough for every
// kernel in src/workload (fib: n/out/cutoff; mergesort: data/scratch/lo/mid/
// hi) without any out-of-line environment allocation.
struct alignas(runtime::kCacheLineSize) TaskNode {
  static constexpr uint32_t kEnvWords = 5;

  TaskBody body = nullptr;
  // The join node notified when this task completes (null = graph root: its
  // completion sets TaskGraph::done). For a continuation node this is the
  // join the FORKING task owed — adopted at ForkN time.
  TaskNode* parent = nullptr;
  // Children still outstanding; the decrement that reaches zero fires the
  // continuation. acq_rel on the RMW chains every child's env writes into
  // visibility for the last arriver, whose queue push then publishes them to
  // whichever worker pops the continuation.
  // mc: kTaskJoinDec, kTaskJoinLoad
  std::atomic<int32_t> join{0};
  // Worker that forked this continuation — the outstanding-continuation
  // counter it was charged to (see TaskGraph::OutstandingFor).
  uint32_t forker = 0;
  uint64_t env[kEnvWords] = {};
};
static_assert(sizeof(TaskNode) == runtime::kCacheLineSize,
              "TaskNode is sized to exactly one cache line");

// Where a flushed spawn batch lands. The executor binding routes to
// Executor::SubmitFromWorker; the mc harness and the allocation audit drive
// ConcurrentMachine directly through their own sinks, so the whole
// fork/join/spawn path runs unmodified under the model checker.
class SpawnSink {
 public:
  virtual ~SpawnSink() = default;

  // `count` ready-to-run items for `worker`'s OWN runqueue (owner push path).
  virtual void SubmitBatch(uint32_t worker, const runtime::WorkItem* items,
                           uint32_t count) = 0;

  // Observation hooks for the mc harness (default no-ops): a fork created
  // continuation `continuation_id` expecting `children` completions; a join
  // counter reached zero and queued that continuation. In a correct run
  // every forked id fires exactly once (join-fires-exactly-once).
  virtual void OnFork(uint32_t worker, uint64_t continuation_id, uint32_t children) {
    (void)worker;
    (void)continuation_id;
    (void)children;
  }
  virtual void OnJoinFire(uint32_t worker, uint64_t continuation_id) {
    (void)worker;
    (void)continuation_id;
  }
};

struct TaskGraphOptions {
  // Workers that may run tasks from this graph (per-worker spawn batching and
  // outstanding-continuation accounting are sized by this).
  uint32_t max_workers = 4;
  // Nodes preallocated per graph; Reset() recycles them. Exhaustion is a
  // loud CHECK, never a silent fallback allocation — size for the kernel
  // (internal nodes * (fanout + 1) + root, see docs/tasks.md#sizing).
  uint32_t arena_capacity = 1u << 14;
  // Fault knob (mc `forkjoin` harness): replace the atomic join decrement
  // with a plain load/store pair. Two last-arriving children can then read
  // the same counter value, lose a decrement, and strand the continuation —
  // the checker must find and minimize the join-fires-exactly-once
  // violation (tests/golden/mc_broken_join_counter.json).
  bool broken_join_counter = false;
};

// A reusable fork-join DAG: arena, join protocol, and the executor binding.
// Thread-compatible setup (NewRoot/Reset between runs, single thread);
// thread-safe execution (RunItem from any bound worker).
class TaskGraph : public runtime::TaskRunner {
 public:
  explicit TaskGraph(const TaskGraphOptions& options);

  // Allocates the root task (parent = null). Call between runs only.
  TaskNode& NewRoot(TaskBody body);

  // The submittable item for `node`: id = stable arena index + 1, task = the
  // node handle. Submit through Executor::Submit/Seed before Run().
  runtime::WorkItem ItemFor(TaskNode& node) const;

  // True once the root task's subgraph fully completed.
  bool done() const { return done_.load(std::memory_order_acquire); }

  // Rewinds the arena and the done flag for the next run. All nodes handed
  // out so far are invalidated; steady-state reruns allocate nothing.
  void Reset();

  // Nodes handed out since construction/Reset (capacity headroom metric).
  uint32_t nodes_allocated() const;

  // Runs `item`'s task body on `worker`, completing the join protocol and
  // flushing spawned work into `sink` before returning. The direct-drive
  // entry for the mc harness and the allocation audit; the executor override
  // below routes here with an Executor-backed sink.
  void RunItemOn(const runtime::WorkItem& item, uint32_t worker, SpawnSink& sink);

  // runtime::TaskRunner:
  void RunItem(const runtime::WorkItem& item, runtime::Executor& executor,
               uint32_t worker) override;
  int64_t OutstandingFor(uint32_t worker) const override;

  const TaskGraphOptions& options() const { return options_; }

 private:
  friend class TaskContext;

  // Chunked bump allocation: a worker grabs kAllocChunk indices per shared
  // fetch_add, so concurrent spawning does not serialize on the cursor.
  static constexpr uint32_t kAllocChunk = 16;

  struct alignas(runtime::kCacheLineSize) WorkerState {
    uint32_t chunk_next = 0;
    uint32_t chunk_end = 0;
    // Continuations this worker forked that have not fired yet. Relaxed
    // counters read by the supervisor's watchdog only — pending-work
    // accounting, never a scheduling decision input.
    // optsched-lint: allow(mc-hook-coverage): watchdog pending-work bookkeeping, read only by the supervisor outside the checked protocol
    std::atomic<int64_t> outstanding{0};
  };

  TaskNode* AllocNode(uint32_t worker);
  // Join protocol for a task that returned complete: decrement the parent's
  // counter; the arriver that reaches zero queues the continuation.
  void CompleteTask(TaskNode* node, TaskContext& ctx);

  TaskGraphOptions options_;
  std::unique_ptr<TaskNode[]> arena_;
  // Shared arena cursor. Chunk handout order is irrelevant to the protocol
  // (any distinct indices work), so concurrent bumps commute.
  // optsched-lint: allow(mc-hook-coverage): arena chunk cursor — handout order is protocol-irrelevant, any interleaving yields distinct indices
  std::atomic<uint32_t> arena_next_{0};
  std::unique_ptr<WorkerState[]> worker_state_;
  // Root-completion flag. The executor terminates on its remaining-items
  // count; harnesses and benches poll this at loop boundaries (every poll
  // sits between Yield decision points under the checker).
  // optsched-lint: allow(mc-hook-coverage): termination flag polled at harness loop boundaries, mirrored by remaining_items_ under the executor
  std::atomic<bool> done_{false};
};

// The per-item view a running body forks and spawns through. Stack-allocated
// by RunItemOn; holds the worker-local spawn batch (flushed to the sink at
// the latest when the body's item finishes, so a worker never exits an item
// holding back runnable work).
class TaskContext {
 public:
  // Spawns per sink flush: one SubmitFromWorker (count bump + owner pushes +
  // one wakeup bump) amortized over up to this many tasks.
  static constexpr uint32_t kSpawnBatch = 8;

  uint32_t worker() const { return worker_; }
  TaskGraph& graph() { return *graph_; }

  // Transfers the current task's completion obligation to a fresh
  // continuation that fires after `children` completions. Call at most once
  // per body; fill the returned node's env (result slots) before returning,
  // then create and Spawn exactly `children` children against it.
  TaskNode& ForkN(TaskBody continuation, uint32_t children);

  // Binary fork sugar: ForkN(continuation, 2) plus both children allocated.
  // Fill the env words of all three nodes, then Spawn(left) and Spawn(right).
  struct Fork2Nodes {
    TaskNode& cont;
    TaskNode& left;
    TaskNode& right;
  };
  Fork2Nodes Fork2(TaskBody continuation, TaskBody left, TaskBody right);

  // Allocates a child whose completion decrements `parent`'s join counter.
  // Not yet runnable: fill env first, then Spawn it.
  TaskNode& NewChild(TaskBody body, TaskNode& parent);

  // Makes `child` runnable on this worker's queue (batched; the push
  // publishes the env words to any thief).
  void Spawn(TaskNode& child);

 private:
  friend class TaskGraph;

  TaskContext(TaskGraph* graph, uint32_t worker, SpawnSink* sink)
      : graph_(graph), worker_(worker), sink_(sink) {}

  void Enqueue(TaskNode& node);
  void Flush();

  TaskGraph* graph_;
  uint32_t worker_;
  SpawnSink* sink_;
  TaskNode* current_ = nullptr;
  bool deferred_ = false;
  uint32_t batch_size_ = 0;
  runtime::WorkItem batch_[kSpawnBatch];
};

}  // namespace optsched::task

#endif  // OPTSCHED_SRC_TASK_TASK_H_
