#include "src/task/task.h"

#include "src/base/check.h"
#include "src/runtime/mc_hooks.h"

namespace optsched::task {

namespace mc_hooks = runtime::mc_hooks;

using runtime::WorkItem;

namespace {

// The executor binding: spawn batches land on the worker's own deque through
// the worker-context submit seam.
class ExecutorSink final : public SpawnSink {
 public:
  explicit ExecutorSink(runtime::Executor& executor) : executor_(executor) {}

  void SubmitBatch(uint32_t worker, const WorkItem* items, uint32_t count) override {
    executor_.SubmitFromWorker(worker, items, count);
  }

 private:
  runtime::Executor& executor_;
};

}  // namespace

TaskGraph::TaskGraph(const TaskGraphOptions& options)
    : options_(options),
      arena_(std::make_unique<TaskNode[]>(options.arena_capacity)),
      worker_state_(std::make_unique<WorkerState[]>(options.max_workers)) {
  OPTSCHED_CHECK(options_.max_workers >= 1);
  OPTSCHED_CHECK(options_.arena_capacity >= 1);
}

TaskNode& TaskGraph::NewRoot(TaskBody body) {
  TaskNode* node = AllocNode(0);
  node->body = body;
  node->parent = nullptr;
  done_.store(false, std::memory_order_relaxed);  // order: setup-single-threaded
  return *node;
}

WorkItem TaskGraph::ItemFor(TaskNode& node) const {
  const uint64_t index = static_cast<uint64_t>(&node - arena_.get());
  return WorkItem{.id = index + 1,
                  .work_units = 1,
                  .weight = 1024,
                  .arrival_ns = 0,
                  .task = reinterpret_cast<uint64_t>(&node)};
}

void TaskGraph::Reset() {
  arena_next_.store(0, std::memory_order_relaxed);  // order: setup-single-threaded
  for (uint32_t w = 0; w < options_.max_workers; ++w) {
    worker_state_[w].chunk_next = 0;
    worker_state_[w].chunk_end = 0;
    // order: setup-single-threaded
    worker_state_[w].outstanding.store(0, std::memory_order_relaxed);
  }
  done_.store(false, std::memory_order_relaxed);  // order: setup-single-threaded
}

uint32_t TaskGraph::nodes_allocated() const {
  // Chunked handout over-counts by the unused tails of live chunks; fine for
  // a headroom metric.
  const uint32_t next = arena_next_.load(std::memory_order_relaxed);  // order: arena-chunk-commutes
  return next < options_.arena_capacity ? next : options_.arena_capacity;
}

int64_t TaskGraph::OutstandingFor(uint32_t worker) const {
  if (worker >= options_.max_workers) {
    return 0;
  }
  // order: watchdog-pending
  return worker_state_[worker].outstanding.load(std::memory_order_relaxed);
}

// Arena handout is on the spawn hot path: a chunk grab is one relaxed
// fetch_add; within a chunk it is two register increments.
OPTSCHED_HOT_PATH TaskNode* TaskGraph::AllocNode(uint32_t worker) {
  OPTSCHED_CHECK(worker < options_.max_workers);
  WorkerState& state = worker_state_[worker];
  if (state.chunk_next == state.chunk_end) {
    // order: arena-chunk-commutes
    const uint32_t begin = arena_next_.fetch_add(kAllocChunk, std::memory_order_relaxed);
    OPTSCHED_CHECK_MSG(begin < options_.arena_capacity,
                       "TaskGraph arena exhausted — size arena_capacity for the kernel "
                       "(docs/tasks.md#sizing)");
    state.chunk_next = begin;
    state.chunk_end = begin + kAllocChunk;
    if (state.chunk_end > options_.arena_capacity) {
      state.chunk_end = options_.arena_capacity;
    }
  }
  TaskNode* node = &arena_[state.chunk_next++];
  node->parent = nullptr;
  node->join.store(0, std::memory_order_relaxed);  // order: join-init-prepublish
  node->forker = worker;
  return node;
}

// The join protocol: one atomic RMW per completed task, and the decrement
// that reaches zero queues the continuation on the arriver's own queue. The
// acq_rel RMW chain makes every sibling's result writes visible to the last
// arriver; its queue push then publishes them to whoever pops the
// continuation. Workers never wait here — that is the whole design.
OPTSCHED_HOT_PATH void TaskGraph::CompleteTask(TaskNode* node, TaskContext& ctx) {
  TaskNode* parent = node->parent;
  if (parent == nullptr) {
    // Root completed: the graph is done. Release pairs with done()'s acquire
    // so a poller that sees the flag also sees the root's result words.
    done_.store(true, std::memory_order_release);
    return;
  }
  int32_t remaining;
  if (options_.broken_join_counter) {
    // Fault variant: a plain load/store pair instead of the RMW. Two
    // children interleaved between the load and the store both observe the
    // same value, one decrement is lost, and the join never fires — the
    // counterexample the mc harness must find and minimize.
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kTaskJoinLoad, &parent->join);
    // order: broken-join-fault-knob
    const int32_t observed = parent->join.load(std::memory_order_relaxed);
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kTaskJoinDec, &parent->join);
    parent->join.store(observed - 1, std::memory_order_relaxed);  // order: broken-join-fault-knob
    remaining = observed - 1;
  } else {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kTaskJoinDec, &parent->join);
    remaining = parent->join.fetch_sub(1, std::memory_order_acq_rel) - 1;
  }
  if (remaining != 0) {
    return;
  }
  // Last arriver: the continuation's inputs are all written; hand it to this
  // worker's queue and settle the forker's outstanding count.
  // order: watchdog-pending
  worker_state_[parent->forker].outstanding.fetch_sub(1, std::memory_order_relaxed);
  ctx.sink_->OnJoinFire(ctx.worker_, static_cast<uint64_t>(parent - arena_.get()) + 1);
  ctx.Enqueue(*parent);
}

OPTSCHED_HOT_PATH void TaskGraph::RunItemOn(const WorkItem& item, uint32_t worker,
                                            SpawnSink& sink) {
  TaskNode* node = reinterpret_cast<TaskNode*>(item.task);
  OPTSCHED_CHECK(node != nullptr);
  TaskContext ctx(this, worker, &sink);
  ctx.current_ = node;
  node->body(ctx, *node);
  if (!ctx.deferred_) {
    CompleteTask(node, ctx);
  }
  // Flush strictly before returning: the worker is about to FinishCurrent
  // and look for more work, and held-back spawns would be invisible to
  // thieves and to the termination count.
  ctx.Flush();
}

void TaskGraph::RunItem(const WorkItem& item, runtime::Executor& executor, uint32_t worker) {
  ExecutorSink sink(executor);
  RunItemOn(item, worker, sink);
}

OPTSCHED_HOT_PATH TaskNode& TaskContext::ForkN(TaskBody continuation, uint32_t children) {
  OPTSCHED_CHECK_MSG(!deferred_, "a body may fork at most once");
  OPTSCHED_CHECK(children >= 1);
  TaskNode* cont = graph_->AllocNode(worker_);
  cont->body = continuation;
  // The continuation adopts the current task's completion obligation: same
  // parent, and the current task will NOT decrement it on return.
  cont->parent = current_->parent;
  // order: join-init-prepublish
  cont->join.store(static_cast<int32_t>(children), std::memory_order_relaxed);
  cont->forker = worker_;
  deferred_ = true;
  // order: watchdog-pending
  graph_->worker_state_[worker_].outstanding.fetch_add(1, std::memory_order_relaxed);
  sink_->OnFork(worker_, static_cast<uint64_t>(cont - graph_->arena_.get()) + 1, children);
  return *cont;
}

OPTSCHED_HOT_PATH TaskContext::Fork2Nodes TaskContext::Fork2(TaskBody continuation,
                                                             TaskBody left, TaskBody right) {
  TaskNode& cont = ForkN(continuation, 2);
  return Fork2Nodes{cont, NewChild(left, cont), NewChild(right, cont)};
}

OPTSCHED_HOT_PATH TaskNode& TaskContext::NewChild(TaskBody body, TaskNode& parent) {
  TaskNode* child = graph_->AllocNode(worker_);
  child->body = body;
  child->parent = &parent;
  return *child;
}

OPTSCHED_HOT_PATH void TaskContext::Spawn(TaskNode& child) { Enqueue(child); }

OPTSCHED_HOT_PATH void TaskContext::Enqueue(TaskNode& node) {
  if (batch_size_ == kSpawnBatch) {
    Flush();
  }
  batch_[batch_size_++] = graph_->ItemFor(node);
}

OPTSCHED_HOT_PATH void TaskContext::Flush() {
  if (batch_size_ == 0) {
    return;
  }
  const uint32_t count = batch_size_;
  batch_size_ = 0;
  sink_->SubmitBatch(worker_, batch_, count);
}

}  // namespace optsched::task
