// Bridges model-checker event streams into the src/trace pipeline, so a
// counterexample schedule renders in chrome://tracing exactly like a real
// executor run: one lane per virtual worker, decision steps as timestamps.

#ifndef OPTSCHED_SRC_MC_TRACE_EXPORT_H_
#define OPTSCHED_SRC_MC_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/mc/scheduler.h"
#include "src/trace/trace.h"

namespace optsched::mc {

// Maps the harness-level events of one execution (steal outcomes, item
// executions, parks/wakes/bumps) to TraceEvents. Pure sync events (lock and
// seqlock hooks) are omitted unless `include_sync` — they are numerous and
// usually noise at trace scale. Time is the decision step (microseconds in
// the rendered trace, one step apart).
std::vector<trace::TraceEvent> ToTraceEvents(const std::vector<McEvent>& events,
                                             bool include_sync = false);

// Chrome trace JSON for one execution; lanes are named "worker <i>".
std::string ExecutionToChromeTraceJson(const ExecutionResult& result,
                                       uint32_t num_workers, bool include_sync = false);

}  // namespace optsched::mc

#endif  // OPTSCHED_SRC_MC_TRACE_EXPORT_H_
