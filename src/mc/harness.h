// Model-checking harness: the real steal protocol (ConcurrentMachine +
// BalancePolicy, the same code the executor runs) driven by N virtual
// workers, with the paper's properties evaluated over each execution.
//
// Three worker-loop modes:
//   * "balance" — Figure 1's loop in isolation: snapshot, (yield), steal,
//     repeat for a fixed attempt budget. Queues only change through steals,
//     which is what makes failure causality and the d0/2 steal bound exact.
//   * "drain"   — owners pop/execute their own queues and steal when empty,
//     so conservation is checked against the executed-item record too.
//   * "epoch"   — the executor's escalation-epoch protocol in miniature: a
//     parked worker blocks on an epoch change, a supervisor bumps it; the
//     property is that the bump wakes the worker (a miss is a deadlock).
//   * "ingress" — the serving front end's admission path: worker 0 is a
//     PRODUCER pushing items into the owners' bounded mailboxes
//     (src/ingress) mid-exploration; owners drain mailbox->runqueue, then
//     pop/execute/steal like "drain". Discharges no-lost-admitted-items:
//     every item the mailbox accepted is executed, still queued, or still
//     mailbox-resident — full mailboxes refuse loudly (kUserMailboxShed),
//     they never lose.
//   * "wakeup"  — the executor's notify/park handshake end to end: worker 0
//     produces into mailboxes and bumps the wakeup epoch AFTER each push
//     (NotifyIngress's ordering contract); owners sample the epoch at the
//     loop top, drain+execute, and park on an epoch change only when the
//     sample predates any unseen notify. Discharges that a notify landing
//     between an owner's last drain and its park can neither deadlock the
//     owner nor strand the pushed item (wakeup-no-stranded-items).
//   * "deal"    — proactive work-dealing end to end: worker 0 is the DEALER,
//     seeded heavy; it pops/executes its own queue and, while its task count
//     exceeds the deal threshold and an idle peer exists, takes up to
//     deal_window items off its own queue (TakeOwnerBatch) and pushes them
//     item-by-item into that peer's bounded deal mailbox (ingress's
//     DealChannel — the executor's transport, unmodified). A refused item
//     aborts the round and the rest of the window goes BACK on the dealer's
//     queue — unless broken_deal_window drops it, the seeded in-transit-loss
//     fault. Peers drain their deal mailbox into their own queue, execute,
//     and keep the reactive steal fallback. Discharges
//     no-lost-dealt-items (global conservation including deal-mailbox
//     residents) and deal-or-steal-conservation (the deal channel itself
//     neither loses nor fabricates: pushed == drained ∪ still-resident).
//     The grace-window TIMING heuristic is deliberately out of model — it
//     only decides when a deal fires, never what happens to items in
//     transit, so the conservation obligations are window-independent.
//   * "forkjoin" — the continuation-counted task layer (src/task) over the
//     real queues: worker 0 seeds the root of a uniform spawn tree
//     (tree_depth levels, `fanout` children per internal node); workers
//     pop/run task bodies — which fork continuations and spawn children onto
//     the runner's OWN queue mid-exploration — and steal when empty. The
//     join decrement is a decision point (kTaskJoinDec), so the checker
//     drives all last-arriver races. Discharges no-lost-spawns (every
//     spawned item is executed — dynamic work obeys conservation),
//     join-fires-exactly-once, no-worker-blocks-on-join (no parks, no
//     deadlock: joins cost one RMW, never a wait), and
//     bounded-steals-on-tree (migrations stay within the rooted-tree
//     O(W·depth) regime, never the item count).
//
// Properties (per mode):
//   no-lost-items     — multiset{initial items} == queued ∪ executed after.
//   steal-safety      — no successful steal left its victim idle (observed
//                       under both locks, §4.1) — batches included: the whole
//                       batch must keep the victim non-idle.
//   bounded-steals    — migrated ITEMS ≤ d(initial)/2 (§4.3): every permitted
//                       migration strictly decreases the potential, so the
//                       item bound also bounds steal ACTIONS (each action
//                       moves ≥ 1 item).
//   publish-batching  — a successful steal performs ≤ 2 seqlock publishes
//                       inside its critical section (one per queue), however
//                       many items the batch moved.
//   failure-causality — every failed re-check has a concurrent successful
//                       steal inside its snapshot→recheck window (§4.2: all
//                       failures are caused by the optimism, not spurious).
//                       Locked backend only: on chase_lev the causality holds
//                       by construction (TakeTop fails only because a
//                       competitor's CAS moved top) but the competitor's
//                       kUserStealOk note may be emitted after this thread's
//                       recheck event, so the event-window scan would flag
//                       spurious violations.
//   published-depth   — at quiescence, the lock-free published load of every
//                       queue (seqlock snapshot or relaxed counters) equals
//                       the structural count held under the lock: no batched
//                       operation may leave the published depth stale.
//   epoch-wakeup      — no deadlock, and every park is followed by a wake
//                       after an epoch bump.
//   wakeup-no-stranded-items — "wakeup" mode: at termination every mailbox is
//                       empty; an owner may exit only after observing the
//                       producer done AND re-checking its mailbox.
//   no-lost-spawns    — "forkjoin" mode: multiset{root ∪ spawned} == executed
//                       at termination with every queue empty.
//   no-lost-dealt-items — "deal" mode: multiset{seeded} == executed ∪ queued
//                       ∪ deal-mailbox-resident; a dealt item may be anywhere
//                       along the owner-push pipeline, but never gone.
//   deal-or-steal-conservation — "deal" mode: the deal channel conserves —
//                       every drained item was pushed (no fabrication) and
//                       every pushed item is drained or still resident at
//                       termination (no loss inside the mailbox); migration
//                       happens only through deals or the steal protocol.
//   join-fires-exactly-once — every forked continuation's counter reaches
//                       zero exactly once (a lost decrement strands it; the
//                       protocol cannot double-fire an acq_rel RMW chain).
//   no-worker-blocks-on-join — no kUserPark events and no deadlock: the
//                       continuation-counting discipline never waits.
//   bounded-steals-on-tree — migrated items stay within the rooted-tree
//                       steal regime (≤ W·(depth+2)·fanout), far below the
//                       total task count.

#ifndef OPTSCHED_SRC_MC_HARNESS_H_
#define OPTSCHED_SRC_MC_HARNESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/policy.h"
#include "src/ingress/deal_channel.h"
#include "src/ingress/mailbox.h"
#include "src/mc/explorer.h"
#include "src/mc/schedule.h"
#include "src/mc/scheduler.h"
#include "src/runtime/concurrent_machine.h"
#include "src/task/task.h"
#include "src/topology/topology.h"

namespace optsched::mc {

struct PropertyReport {
  std::string name;
  bool holds = true;
  std::string detail;  // why it failed (empty when it holds)
};

class StealHarness {
 public:
  struct Config {
    std::string mode = "balance";  // balance|drain|epoch|ingress|wakeup|forkjoin|deal
    std::string policy = "thread-count";
    // Items seeded per queue; size() is the worker count.
    std::vector<int64_t> initial_loads;
    uint32_t attempts_per_worker = 2;
    uint64_t seed = 1;
    bool recheck = true;
    // Batched steal-half: cap on items per successful steal action (see
    // StealOptions::max_batch). 1 = the original steal-one protocol.
    uint32_t max_steal_batch = 1;
    // Fault mode: ignore the migration rule and the batch cap, stripping the
    // victim bare — the checker must find the steal-safety violation and
    // minimize it (see StealOptions::break_batch_bound).
    bool break_batch_bound = false;
    // "ingress"/"wakeup" modes: BoundedMailbox capacity per owner. Small
    // bounds (2) make the full/refuse path reachable in tiny explorations.
    uint32_t mailbox_capacity = 2;
    // Run-queue backend under test (see runtime::QueueBackend). Both backends
    // discharge the same properties; failure-causality is locked-only.
    runtime::QueueBackend backend = runtime::QueueBackend::kLocked;
    // Chase-Lev ring capacity; small default keeps mc state bounded while
    // still holding every seeded load without spilling to the inbox.
    uint32_t deque_capacity = 64;
    // Fault knob (chase_lev only): thieves read bottom before top with no
    // fence, so a stale size window can claim an already-executed slot. The
    // checker must find the no-lost-items violation.
    bool broken_steal_order = false;
    // "forkjoin" mode: uniform spawn tree of this many levels below the root
    // (tree_depth = 1 is a root forking `fanout` leaves). initial_loads must
    // be all-zero in this mode — the only seeded item is the root task.
    uint32_t tree_depth = 2;
    uint32_t fanout = 2;
    // Fault knob ("forkjoin"): TaskGraphOptions::broken_join_counter — a
    // plain load/store join decrement that can lose a concurrent arrival and
    // strand the continuation (join-fires-exactly-once).
    bool broken_join_counter = false;
    // "deal" mode: cap on items the dealer (worker 0) takes off its own
    // queue per deal round — the take->place window. mailbox_capacity bounds
    // the per-peer deal mailbox, so deal_window > mailbox_capacity makes the
    // refused-tail path reachable in tiny explorations.
    uint32_t deal_window = 2;
    // Fault knob ("deal"): drop the mailbox-refused tail of the window
    // instead of returning it to the dealer's queue — items lost in transit
    // (no-lost-dealt-items).
    bool broken_deal_window = false;

    static Config FromSchedule(const Schedule& schedule);
  };

  explicit StealHarness(Config config);

  // Fresh machine + per-worker state; bodies for one controlled execution.
  // Bodies reach the driving Scheduler through ActiveScheduler().
  std::vector<std::function<void()>> MakeBodies();

  // A BodyFactory bound to this harness (convenience for the explorer).
  BodyFactory Factory();

  // Evaluates the mode's properties over the machine left by the execution
  // that MakeBodies() most recently fed.
  std::vector<PropertyReport> Evaluate(const ExecutionResult& result);

  static const PropertyReport* FirstViolation(const std::vector<PropertyReport>& reports);

  // Serializable identity of `choices` under this harness configuration.
  Schedule MakeSchedule(const std::vector<uint32_t>& choices) const;

  const Config& config() const { return config_; }
  uint32_t num_workers() const { return static_cast<uint32_t>(config_.initial_loads.size()); }
  // d over the seeded task counts; /2 bounds successful steals (§4.3).
  int64_t InitialPotential() const;

 private:
  void BalanceBody(uint32_t worker);
  void DrainBody(uint32_t worker);
  void EpochBody(uint32_t worker);
  // "ingress" mode: worker 0 produces into mailboxes, owners drain+execute.
  void ProducerBody();
  void IngressBody(uint32_t worker);
  // "wakeup" mode: the producer pairs every mailbox push with an epoch bump
  // (NotifyIngress); owners park on the epoch exactly like WorkerMain.
  void WakeupProducerBody();
  void WakeupWorkerBody(uint32_t worker);
  // "forkjoin" mode: pop/run task bodies (spawning onto the own queue),
  // steal when empty, exit when the graph is done or the budget is spent.
  void ForkJoinBody(uint32_t worker);
  // "deal" mode: worker 0 executes and deals surplus into idle peers'
  // mailboxes; peers drain dealt batches, execute, and steal when empty.
  void DealerBody();
  void DealPeerBody(uint32_t worker);
  void StealOnce(uint32_t worker, Rng& rng);

  Config config_;
  Topology topology_;
  std::shared_ptr<const BalancePolicy> policy_;
  std::unique_ptr<runtime::ConcurrentMachine> machine_;
  std::vector<runtime::StealCounters> counters_;
  std::vector<uint64_t> initial_item_ids_;
  // The escalation/wakeup epoch word for "epoch" and "wakeup" modes.
  std::uint64_t epoch_ = 0;
  // "wakeup" mode: set by the producer strictly after its last push, then
  // followed by one final epoch bump (the executor's quit-path ordering).
  bool producer_done_ = false;
  // "ingress" mode state, rebuilt per execution by MakeBodies.
  std::unique_ptr<ingress::MailboxSet> mailboxes_;
  uint64_t next_ingress_id_ = 0;
  // "deal" mode state, rebuilt per execution by MakeBodies: the executor's
  // real deal transport (bounded per-worker mailboxes, prefix acceptance).
  std::unique_ptr<ingress::DealChannel> deal_channel_;
  // "forkjoin" mode state, rebuilt per execution by MakeBodies. The graph
  // runs the REAL src/task join protocol; only the spawn sink is replaced
  // (machine queues + Note hooks instead of Executor::SubmitFromWorker).
  std::unique_ptr<task::TaskGraph> task_graph_;
};

}  // namespace optsched::mc

#endif  // OPTSCHED_SRC_MC_HARNESS_H_
