// Serializable schedules: the checker's counterexample currency.
//
// A Schedule is the choice sequence of one controlled execution plus the
// harness configuration that makes it reproducible (mode, policy, initial
// loads, attempt budget, seed). Serialized as a small flat JSON object so a
// violation found in CI can be committed as a golden file, replayed
// deterministically with `simctl --mc --replay=FILE`, minimized, and
// exported as a Chrome trace for a human to read as a timeline.

#ifndef OPTSCHED_SRC_MC_SCHEDULE_H_
#define OPTSCHED_SRC_MC_SCHEDULE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace optsched::mc {

struct Schedule {
  // Harness identity (see src/mc/harness.h): "balance", "drain", "epoch",
  // or "ingress".
  std::string harness = "balance";
  // Policy registry name (src/core/policies/registry.h).
  std::string policy = "thread-count";
  // Items seeded per queue; its size is the worker count.
  std::vector<int64_t> initial_loads;
  uint32_t attempts_per_worker = 0;
  uint64_t seed = 1;
  bool recheck = true;
  // Batched steal-half cap (1 = steal-one; matches StealOptions::max_batch).
  // Absent in pre-batching golden files; FromJson defaults to 1.
  uint32_t max_steal_batch = 1;
  // Fault mode: unbounded batch ignoring the migration rule (idles victims).
  bool break_batch_bound = false;
  // Per-mailbox bound for the "ingress" harness (BoundedMailbox capacity).
  // Absent in pre-ingress golden files; FromJson defaults to 2.
  uint32_t mailbox_capacity = 2;
  // Run-queue backend under test: "locked" or "chase_lev"
  // (runtime::QueueBackendName). Absent in pre-backend golden files;
  // FromJson defaults to "locked".
  std::string backend = "locked";
  // Chase–Lev ring capacity (rounded up to a power of two by the deque).
  // Small by default so the mc state space stays bounded.
  uint32_t deque_capacity = 64;
  // Fault mode: thieves read bottom before top with no fence between, so a
  // stale window can claim an already-executed slot (no-lost-items).
  bool broken_steal_order = false;
  // "forkjoin" harness: uniform spawn-tree depth and fanout (see
  // StealHarness::Config). Absent in pre-task golden files; FromJson
  // defaults to 2 / 2.
  uint32_t tree_depth = 2;
  uint32_t fanout = 2;
  // Fault mode ("forkjoin"): plain load/store join decrement loses
  // concurrent arrivals, stranding the continuation (join-fires-exactly-once).
  bool broken_join_counter = false;
  // "deal" harness: cap on items the dealer takes per deal round (the
  // take->place window; see StealHarness::Config::deal_window). Absent in
  // pre-deal golden files; FromJson defaults to 2.
  uint32_t deal_window = 2;
  // Fault mode ("deal"): the dealer DROPS the mailbox-refused tail of its
  // window instead of returning it to its own queue — the lost-in-transit
  // bug no-lost-dealt-items exists to catch.
  bool broken_deal_window = false;
  // The violated property ("" when the schedule is not a counterexample).
  std::string property;
  std::string note;
  // Thread chosen at each decision point. Replay follows these, then falls
  // back to the deterministic default rule once they are exhausted.
  std::vector<uint32_t> choices;

  std::string ToJson() const;
  // Strict enough for our own output, tolerant of whitespace. nullopt on
  // malformed input or missing required fields.
  static std::optional<Schedule> FromJson(const std::string& json);

  bool operator==(const Schedule& other) const = default;
};

}  // namespace optsched::mc

#endif  // OPTSCHED_SRC_MC_SCHEDULE_H_
