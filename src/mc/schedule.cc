#include "src/mc/schedule.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "src/base/str.h"

namespace optsched::mc {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
}

// Minimal scanner for the flat JSON object ToJson emits: string, integer,
// boolean and integer-array values keyed by string names. No nesting.
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(const std::string& text) : text_(text) {}

  bool Parse() {
    SkipWs();
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!ParseValue(key)) return false;
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      return Consume('}');
    }
  }

  bool GetString(const std::string& key, std::string& out) const {
    auto it = strings_.find(key);
    if (it == strings_.end()) return false;
    out = it->second;
    return true;
  }
  bool GetInt(const std::string& key, int64_t& out) const {
    auto it = ints_.find(key);
    if (it == ints_.end()) return false;
    out = it->second;
    return true;
  }
  bool GetBool(const std::string& key, bool& out) const {
    auto it = bools_.find(key);
    if (it == bools_.end()) return false;
    out = it->second;
    return true;
  }
  bool GetIntArray(const std::string& key, std::vector<int64_t>& out) const {
    auto it = arrays_.find(key);
    if (it == arrays_.end()) return false;
    out = it->second;
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        out += e == 'n' ? '\n' : e;
      } else {
        out += c;
      }
    }
    return Consume('"');
  }
  bool ParseInt(int64_t& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start) return false;
    out = std::strtoll(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
    return true;
  }
  bool ParseValue(const std::string& key) {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      std::string s;
      if (!ParseString(s)) return false;
      strings_[key] = s;
      return true;
    }
    if (c == '[') {
      ++pos_;
      std::vector<int64_t> values;
      SkipWs();
      if (Consume(']')) {
        arrays_[key] = values;
        return true;
      }
      for (;;) {
        SkipWs();
        int64_t v = 0;
        if (!ParseInt(v)) return false;
        values.push_back(v);
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) {
          arrays_[key] = values;
          return true;
        }
        return false;
      }
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      bools_[key] = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      bools_[key] = false;
      return true;
    }
    int64_t v = 0;
    if (!ParseInt(v)) return false;
    ints_[key] = v;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::map<std::string, std::string> strings_;
  std::map<std::string, int64_t> ints_;
  std::map<std::string, bool> bools_;
  std::map<std::string, std::vector<int64_t>> arrays_;
};

void AppendIntArray(std::string& out, const std::vector<int64_t>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat("%lld", static_cast<long long>(values[i]));
  }
  out += ']';
}

}  // namespace

std::string Schedule::ToJson() const {
  std::string out = "{\n  \"version\": 1,\n  \"harness\": ";
  AppendEscaped(out, harness);
  out += ",\n  \"policy\": ";
  AppendEscaped(out, policy);
  out += ",\n  \"initial_loads\": ";
  AppendIntArray(out, initial_loads);
  out += StrFormat(",\n  \"attempts_per_worker\": %u", attempts_per_worker);
  out += StrFormat(",\n  \"seed\": %llu", static_cast<unsigned long long>(seed));
  out += std::string(",\n  \"recheck\": ") + (recheck ? "true" : "false");
  out += StrFormat(",\n  \"max_steal_batch\": %u", max_steal_batch);
  out += std::string(",\n  \"break_batch_bound\": ") + (break_batch_bound ? "true" : "false");
  out += StrFormat(",\n  \"mailbox_capacity\": %u", mailbox_capacity);
  out += ",\n  \"backend\": ";
  AppendEscaped(out, backend);
  out += StrFormat(",\n  \"deque_capacity\": %u", deque_capacity);
  out += std::string(",\n  \"broken_steal_order\": ") + (broken_steal_order ? "true" : "false");
  // Forkjoin-only fields are omitted for the other harnesses so their
  // committed goldens stay byte-stable across the schema growth (FromJson
  // defaults the fields when absent).
  if (harness == "forkjoin") {
    out += StrFormat(",\n  \"tree_depth\": %u", tree_depth);
    out += StrFormat(",\n  \"fanout\": %u", fanout);
    out += std::string(",\n  \"broken_join_counter\": ") +
           (broken_join_counter ? "true" : "false");
  }
  // Deal-only fields follow the same conditional-emission rule: every
  // committed non-deal golden stays byte-identical across this schema growth.
  if (harness == "deal") {
    out += StrFormat(",\n  \"deal_window\": %u", deal_window);
    out += std::string(",\n  \"broken_deal_window\": ") +
           (broken_deal_window ? "true" : "false");
  }
  out += ",\n  \"property\": ";
  AppendEscaped(out, property);
  out += ",\n  \"note\": ";
  AppendEscaped(out, note);
  out += ",\n  \"choices\": ";
  std::vector<int64_t> wide(choices.begin(), choices.end());
  AppendIntArray(out, wide);
  out += "\n}\n";
  return out;
}

std::optional<Schedule> Schedule::FromJson(const std::string& json) {
  FlatJsonScanner scanner(json);
  if (!scanner.Parse()) {
    return std::nullopt;
  }
  Schedule schedule;
  if (!scanner.GetString("harness", schedule.harness) ||
      !scanner.GetString("policy", schedule.policy)) {
    return std::nullopt;
  }
  if (!scanner.GetIntArray("initial_loads", schedule.initial_loads)) {
    return std::nullopt;
  }
  int64_t attempts = 0;
  if (scanner.GetInt("attempts_per_worker", attempts)) {
    schedule.attempts_per_worker = static_cast<uint32_t>(attempts);
  }
  int64_t seed = 1;
  if (scanner.GetInt("seed", seed)) {
    schedule.seed = static_cast<uint64_t>(seed);
  }
  scanner.GetBool("recheck", schedule.recheck);
  int64_t max_batch = 0;
  if (scanner.GetInt("max_steal_batch", max_batch) && max_batch >= 1) {
    schedule.max_steal_batch = static_cast<uint32_t>(max_batch);
  }
  scanner.GetBool("break_batch_bound", schedule.break_batch_bound);
  int64_t mailbox_capacity = 0;
  if (scanner.GetInt("mailbox_capacity", mailbox_capacity) && mailbox_capacity >= 1) {
    schedule.mailbox_capacity = static_cast<uint32_t>(mailbox_capacity);
  }
  scanner.GetString("backend", schedule.backend);
  int64_t deque_capacity = 0;
  if (scanner.GetInt("deque_capacity", deque_capacity) && deque_capacity >= 2) {
    schedule.deque_capacity = static_cast<uint32_t>(deque_capacity);
  }
  scanner.GetBool("broken_steal_order", schedule.broken_steal_order);
  int64_t tree_depth = 0;
  if (scanner.GetInt("tree_depth", tree_depth) && tree_depth >= 1) {
    schedule.tree_depth = static_cast<uint32_t>(tree_depth);
  }
  int64_t fanout = 0;
  if (scanner.GetInt("fanout", fanout) && fanout >= 1) {
    schedule.fanout = static_cast<uint32_t>(fanout);
  }
  scanner.GetBool("broken_join_counter", schedule.broken_join_counter);
  int64_t deal_window = 0;
  if (scanner.GetInt("deal_window", deal_window) && deal_window >= 1) {
    schedule.deal_window = static_cast<uint32_t>(deal_window);
  }
  scanner.GetBool("broken_deal_window", schedule.broken_deal_window);
  scanner.GetString("property", schedule.property);
  scanner.GetString("note", schedule.note);
  std::vector<int64_t> choices;
  if (!scanner.GetIntArray("choices", choices)) {
    return std::nullopt;
  }
  schedule.choices.assign(choices.begin(), choices.end());
  return schedule;
}

}  // namespace optsched::mc
