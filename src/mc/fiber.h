// Cooperative fibers (ucontext) for the deterministic model checker.
//
// The checker runs every virtual worker on ONE OS thread: a fiber switch is a
// plain swapcontext (~100ns, no kernel involvement, no preemption), so an
// execution is a pure function of the scheduling choices — the property that
// makes schedule record/replay exact and DFS exploration meaningful. Real
// threads would reintroduce the nondeterminism we are trying to enumerate.
//
// Abandoning an execution midway (deadlock found, property violated, sleep-set
// pruned) must not leak: Abort() resumes the fiber one last time and the
// scheduler's hook throws FiberAbort from the suspension point, unwinding the
// fiber's stack through all destructors; the trampoline catches it at the top.
//
// Under AddressSanitizer, stack switches are announced via the
// __sanitizer_*_switch_fiber API so ASan tracks the fiber stacks instead of
// reporting false positives on them.

#ifndef OPTSCHED_SRC_MC_FIBER_H_
#define OPTSCHED_SRC_MC_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace optsched::mc {

// Thrown through a fiber's stack to unwind it when an execution is abandoned.
struct FiberAbort {};

class Fiber {
 public:
  // `body` runs on the fiber's own stack the first time Resume() is called.
  explicit Fiber(std::function<void()> body, size_t stack_size = 256 * 1024);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches from the calling (scheduler) context into the fiber; returns
  // when the fiber calls Yield() or its body finishes. Must not be called on
  // a finished fiber.
  void Resume();

  // Called from inside the fiber's body: suspends it and returns control to
  // the Resume() caller. Throws FiberAbort if the fiber is being abandoned.
  void Yield();

  // Resumes the fiber with the abort flag set, so its pending Yield() throws
  // FiberAbort and the stack unwinds. No-op on a finished fiber.
  void Abort();

  bool finished() const { return finished_; }

 private:
  static void Trampoline();

  void SwitchInto();
  void SwitchOut();

  ucontext_t context_;
  ucontext_t return_context_;
  std::unique_ptr<char[]> stack_;
  size_t stack_size_;
  std::function<void()> body_;
  bool started_ = false;
  bool finished_ = false;
  bool aborting_ = false;
  // ASan fake-stack handles for the two directions of the switch.
  void* fake_stack_fiber_ = nullptr;
  void* fake_stack_return_ = nullptr;
};

}  // namespace optsched::mc

#endif  // OPTSCHED_SRC_MC_FIBER_H_
