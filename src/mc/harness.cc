#include "src/mc/harness.h"

#include <algorithm>
#include <map>

#include "src/base/check.h"
#include "src/base/str.h"
#include "src/core/policies/registry.h"
#include "src/sched/deal_policy.h"
#include "src/sched/machine_state.h"

namespace optsched::mc {

using runtime::ConcurrentMachine;
using runtime::StealCounters;
using runtime::StealObservation;
using runtime::WorkItem;

namespace {

// "forkjoin" mode sink: the real src/task join protocol runs unmodified; only
// the spawn destination changes — batches land on the runner's own machine
// queue (the executor's PushBatchOwner path) and every spawn/fork/fire is
// announced to the checker.
class McTaskSink final : public task::SpawnSink {
 public:
  explicit McTaskSink(ConcurrentMachine& machine) : machine_(machine) {}

  void SubmitBatch(uint32_t worker, const WorkItem* items, uint32_t count) override {
    machine_.queue(worker).PushBatchOwner(items, count);
    Scheduler* scheduler = ActiveScheduler();
    for (uint32_t i = 0; i < count; ++i) {
      scheduler->Note(kUserTaskSpawn, static_cast<int64_t>(items[i].id), worker);
    }
  }

  void OnFork(uint32_t worker, uint64_t continuation_id, uint32_t children) override {
    ActiveScheduler()->Note(kUserTaskFork, static_cast<int64_t>(continuation_id),
                            static_cast<int64_t>(children), worker);
  }

  void OnJoinFire(uint32_t worker, uint64_t continuation_id) override {
    ActiveScheduler()->Note(kUserJoinFire, static_cast<int64_t>(continuation_id), worker);
  }

 private:
  ConcurrentMachine& machine_;
};

// Uniform spawn tree: every node at remaining depth > 0 forks `fanout`
// children under a trivial continuation. env[0] = remaining depth,
// env[1] = fanout. Lives here (not src/workload) so the mc target does not
// grow a workload dependency for a shape this small.
void UniformTreeCont(task::TaskContext& /*ctx*/, task::TaskNode& /*self*/) {}

void UniformTreeTask(task::TaskContext& ctx, task::TaskNode& self) {
  const uint64_t depth = self.env[0];
  const uint64_t fanout = self.env[1];
  if (depth == 0) {
    return;  // leaf: returns complete, decrements its parent's join
  }
  task::TaskNode& cont = ctx.ForkN(UniformTreeCont, static_cast<uint32_t>(fanout));
  for (uint64_t i = 0; i < fanout; ++i) {
    task::TaskNode& child = ctx.NewChild(UniformTreeTask, cont);
    child.env[0] = depth - 1;
    child.env[1] = fanout;
    ctx.Spawn(child);
  }
}

// Internal (forking) node count of the uniform tree: levels 0..depth-1.
uint64_t UniformTreeInternalNodes(uint32_t depth, uint32_t fanout) {
  uint64_t internal = 0;
  uint64_t level = 1;
  for (uint32_t k = 0; k < depth; ++k) {
    internal += level;
    level *= fanout;
  }
  return internal;
}

}  // namespace

StealHarness::Config StealHarness::Config::FromSchedule(const Schedule& schedule) {
  Config config;
  config.mode = schedule.harness;
  config.policy = schedule.policy;
  config.initial_loads = schedule.initial_loads;
  config.attempts_per_worker = schedule.attempts_per_worker;
  config.seed = schedule.seed;
  config.recheck = schedule.recheck;
  config.max_steal_batch = schedule.max_steal_batch;
  config.break_batch_bound = schedule.break_batch_bound;
  config.mailbox_capacity = schedule.mailbox_capacity;
  OPTSCHED_CHECK_MSG(runtime::ParseQueueBackend(schedule.backend, config.backend),
                     "unknown backend in schedule");
  config.deque_capacity = schedule.deque_capacity;
  config.broken_steal_order = schedule.broken_steal_order;
  config.tree_depth = schedule.tree_depth;
  config.fanout = schedule.fanout;
  config.broken_join_counter = schedule.broken_join_counter;
  config.deal_window = schedule.deal_window;
  config.broken_deal_window = schedule.broken_deal_window;
  return config;
}

StealHarness::StealHarness(Config config)
    : config_(std::move(config)),
      topology_(Topology::Smp(static_cast<uint32_t>(config_.initial_loads.size()))) {
  OPTSCHED_CHECK(!config_.initial_loads.empty());
  OPTSCHED_CHECK_MSG(config_.mode == "balance" || config_.mode == "drain" ||
                         config_.mode == "epoch" || config_.mode == "ingress" ||
                         config_.mode == "wakeup" || config_.mode == "forkjoin" ||
                         config_.mode == "deal",
                     "unknown harness mode");
  if (config_.mode == "forkjoin") {
    // The only seeded item is the root task: pre-seeded plain items would
    // blur the no-lost-spawns accounting (dynamic spawns are the point).
    for (int64_t load : config_.initial_loads) {
      OPTSCHED_CHECK_MSG(load == 0, "forkjoin mode seeds only the root task "
                                    "(initial_loads must be all zero)");
    }
    OPTSCHED_CHECK(config_.tree_depth >= 1 && config_.fanout >= 1);
  } else {
    OPTSCHED_CHECK_MSG(!config_.broken_join_counter,
                       "broken_join_counter is a forkjoin fault knob");
  }
  if (config_.mode == "deal") {
    // Worker 0 is the dealer; dealing needs at least one peer, a non-empty
    // take window, and a bounded mailbox to refuse into.
    OPTSCHED_CHECK_MSG(config_.initial_loads.size() >= 2,
                       "deal mode needs >= 2 workers (worker 0 is the dealer)");
    OPTSCHED_CHECK_MSG(config_.deal_window >= 1, "deal mode needs deal_window >= 1");
    OPTSCHED_CHECK_MSG(config_.mailbox_capacity >= 1,
                       "deal mode needs mailbox_capacity >= 1");
  } else {
    OPTSCHED_CHECK_MSG(!config_.broken_deal_window,
                       "broken_deal_window is a deal fault knob");
  }
  const bool producer_mode = config_.mode == "ingress" || config_.mode == "wakeup";
  // Producer modes need at least one owner besides the producer (worker 0).
  OPTSCHED_CHECK_MSG(!producer_mode || config_.initial_loads.size() >= 2,
                     "ingress/wakeup modes need >= 2 workers (worker 0 is the producer)");
  OPTSCHED_CHECK_MSG(!producer_mode || config_.mailbox_capacity >= 1,
                     "ingress/wakeup modes need mailbox_capacity >= 1");
  OPTSCHED_CHECK_MSG(config_.backend == runtime::QueueBackend::kChaseLev ||
                         !config_.broken_steal_order,
                     "broken_steal_order is a chase_lev fault knob");
  policy_ = policies::MakePolicyByName(config_.policy, topology_);
  OPTSCHED_CHECK_MSG(policy_ != nullptr, "unknown policy name");
}

int64_t StealHarness::InitialPotential() const {
  return PotentialOfLoads(config_.initial_loads);
}

std::vector<std::function<void()>> StealHarness::MakeBodies() {
  const uint32_t n = num_workers();
  machine_ = std::make_unique<ConcurrentMachine>(
      n, runtime::MachineOptions{.backend = config_.backend,
                                 .deque_capacity = config_.deque_capacity,
                                 .broken_steal_order = config_.broken_steal_order});
  counters_.assign(n, StealCounters{});
  initial_item_ids_.clear();
  epoch_ = 0;
  producer_done_ = false;
  uint64_t next_id = 1;
  std::vector<WorkItem> seed;
  for (uint32_t q = 0; q < n; ++q) {
    seed.clear();
    for (int64_t k = 0; k < config_.initial_loads[q]; ++k) {
      seed.push_back(WorkItem{.id = next_id, .work_units = 1, .weight = 1024});
      initial_item_ids_.push_back(next_id);
      ++next_id;
    }
    if (!seed.empty()) {
      // Owner-side seeding: on chase_lev this lands items in the deque (the
      // stealable structure), not the external-submit inbox — balance mode
      // never runs PopForRun, so inbox items would be invisible to thieves.
      machine_->queue(q).PushBatchOwner(seed.data(), static_cast<uint32_t>(seed.size()));
    }
  }
  task_graph_.reset();
  if (config_.mode == "forkjoin") {
    // Every internal node allocates one continuation plus `fanout` children;
    // chunked handout wastes up to one chunk per worker, covered by slack.
    const uint64_t internal = UniformTreeInternalNodes(config_.tree_depth, config_.fanout);
    const uint64_t capacity = 1 + internal * (config_.fanout + 1) + 16ull * n + 16;
    task_graph_ = std::make_unique<task::TaskGraph>(
        task::TaskGraphOptions{.max_workers = n,
                               .arena_capacity = static_cast<uint32_t>(capacity),
                               .broken_join_counter = config_.broken_join_counter});
    task::TaskNode& root = task_graph_->NewRoot(UniformTreeTask);
    root.env[0] = config_.tree_depth;
    root.env[1] = config_.fanout;
    const WorkItem root_item = task_graph_->ItemFor(root);
    machine_->queue(0).PushBatchOwner(&root_item, 1);
    initial_item_ids_.push_back(root_item.id);
  }
  mailboxes_.reset();
  next_ingress_id_ = next_id;
  if (config_.mode == "ingress" || config_.mode == "wakeup") {
    // Fresh mailboxes per execution; no notify callback — the owners poll
    // PendingFor at their loop top, and every mailbox op is already a
    // decision point through the kMailbox* hooks.
    mailboxes_ = std::make_unique<ingress::MailboxSet>(n, config_.mailbox_capacity);
  }
  deal_channel_.reset();
  if (config_.mode == "deal") {
    // The executor's real deal transport. Same no-notify reasoning as the
    // mailboxes above: peers poll DealtPendingFor at their loop top, and the
    // BoundedMailbox hooks already make every push/drain a decision point.
    deal_channel_ = std::make_unique<ingress::DealChannel>(n, config_.mailbox_capacity);
  }
  std::vector<std::function<void()>> bodies;
  bodies.reserve(n);
  for (uint32_t w = 0; w < n; ++w) {
    if (config_.mode == "balance") {
      bodies.push_back([this, w] { BalanceBody(w); });
    } else if (config_.mode == "drain") {
      bodies.push_back([this, w] { DrainBody(w); });
    } else if (config_.mode == "ingress") {
      bodies.push_back(w == 0 ? std::function<void()>([this] { ProducerBody(); })
                              : std::function<void()>([this, w] { IngressBody(w); }));
    } else if (config_.mode == "wakeup") {
      bodies.push_back(w == 0 ? std::function<void()>([this] { WakeupProducerBody(); })
                              : std::function<void()>([this, w] { WakeupWorkerBody(w); }));
    } else if (config_.mode == "forkjoin") {
      bodies.push_back([this, w] { ForkJoinBody(w); });
    } else if (config_.mode == "deal") {
      bodies.push_back(w == 0 ? std::function<void()>([this] { DealerBody(); })
                              : std::function<void()>([this, w] { DealPeerBody(w); }));
    } else {
      bodies.push_back([this, w] { EpochBody(w); });
    }
  }
  return bodies;
}

BodyFactory StealHarness::Factory() {
  return [this] { return MakeBodies(); };
}

void StealHarness::StealOnce(uint32_t worker, Rng& rng) {
  Scheduler* scheduler = ActiveScheduler();
  OPTSCHED_CHECK(scheduler != nullptr);
  // The snapshot marker precedes the seqlock reads: a steal interleaved into
  // the middle of Snapshot() is inside the causality window too.
  scheduler->Note(kUserSnapshot, static_cast<int64_t>(counters_[worker].attempts));
  const LoadSnapshot snapshot = machine_->Snapshot();
  scheduler->Yield();  // the selection→stealing gap where staleness develops

  const StealCounters before = counters_[worker];
  CpuId victim = 0;
  StealObservation observation;
  const runtime::StealOptions options{.recheck = config_.recheck,
                                      .max_batch = config_.max_steal_batch,
                                      .break_batch_bound = config_.break_batch_bound};
  const bool ok = machine_->TrySteal(*policy_, worker, snapshot, rng, options,
                                     counters_[worker], &topology_, &victim, &observation);
  const StealCounters& after = counters_[worker];
  if (ok) {
    // arg1 is the effective victim depth: on chase_lev the victim may have
    // executed (FinishCurrent) or dealt away (TakeOwnerBatch) its own items
    // between the thief's observation reads — the two non-CAS-guarded tasks
    // decrements — and the deltas credit that owner progress back so
    // steal-safety judges the state the migration gate actually acted on
    // (both always 0 on locked: the victim is frozen under its lock).
    scheduler->Note(kUserStealOk, victim,
                    observation.victim_tasks_after + observation.victim_finished_delta +
                        observation.victim_dealt_delta,
                    static_cast<int64_t>(observation.item_id));
    scheduler->Note(kUserStealBatch, static_cast<int64_t>(observation.items_moved),
                    static_cast<int64_t>(observation.seqlock_writes), victim);
  } else if (after.failed_recheck > before.failed_recheck) {
    scheduler->Note(kUserStealFailRecheck, victim);
  } else if (after.failed_no_task > before.failed_no_task) {
    scheduler->Note(kUserStealFailNoTask, victim);
  } else {
    scheduler->Note(kUserStealEmptyFilter);
  }
}

void StealHarness::BalanceBody(uint32_t worker) {
  Scheduler* scheduler = ActiveScheduler();
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + worker + 1);
  for (uint32_t attempt = 0; attempt < config_.attempts_per_worker; ++attempt) {
    StealOnce(worker, rng);
    scheduler->Yield();  // attempt boundary: a free switch point
  }
}

void StealHarness::DrainBody(uint32_t worker) {
  Scheduler* scheduler = ActiveScheduler();
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + worker + 1);
  uint32_t steal_attempts = 0;
  for (;;) {
    std::optional<WorkItem> item = machine_->queue(worker).PopForRun();
    if (item.has_value()) {
      scheduler->Note(kUserExecuteItem, static_cast<int64_t>(item->id));
      scheduler->Yield();  // the item "runs" here
      machine_->queue(worker).FinishCurrent();
      continue;
    }
    if (steal_attempts >= config_.attempts_per_worker) {
      return;
    }
    ++steal_attempts;
    StealOnce(worker, rng);
    scheduler->Yield();
  }
}

void StealHarness::ForkJoinBody(uint32_t worker) {
  Scheduler* scheduler = ActiveScheduler();
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + worker + 1);
  McTaskSink sink(*machine_);
  uint32_t fruitless = 0;
  for (;;) {
    // Own queue first: spawns always land on the spawner's own queue, so a
    // worker that drains itself before exiting can never strand a task —
    // the termination argument for the whole mode.
    std::optional<WorkItem> item = machine_->queue(worker).PopForRun();
    if (item.has_value()) {
      scheduler->Note(kUserExecuteItem, static_cast<int64_t>(item->id));
      scheduler->Yield();  // the body "runs" here
      // The real join protocol: fork/spawn/complete, with kTaskJoinDec a
      // decision point, so the checker drives every last-arriver race.
      task_graph_->RunItemOn(*item, worker, sink);
      machine_->queue(worker).FinishCurrent();
      fruitless = 0;
      continue;
    }
    if (task_graph_->done() || fruitless >= config_.attempts_per_worker) {
      return;
    }
    ++fruitless;
    StealOnce(worker, rng);
    scheduler->Yield();
  }
}

void StealHarness::DealerBody() {
  constexpr uint32_t kWorker = 0;
  Scheduler* scheduler = ActiveScheduler();
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + 1);
  // The executor's decision layer, unmodified, at the always-on operating
  // point: the grace-window TIMING heuristic is out of model (see the header
  // — it decides when a deal fires, never what happens to items in transit),
  // so every conservation obligation checked here is window-independent.
  DealConfig deal_config;
  deal_config.enabled = true;
  deal_config.grace_rounds = 0;
  deal_config.max_batch = config_.deal_window;
  const DealPolicy deal_policy(deal_config);
  uint32_t steal_attempts = 0;
  std::vector<WorkItem> window;
  std::vector<int64_t> pending(num_workers(), 0);
  // Once the gate fails, the dealer's load can only fall (pops, deals) until
  // a steal lands, so the re-read — and its interleaving points — is skipped
  // until then. Pure state-space economy; no reachable behavior change.
  bool may_deal = true;
  for (;;) {
    // Deal check at the loop top, with no item held (the executor's
    // fail-stop discipline): surplus above the threshold moves before the
    // dealer sinks into executing it.
    // ReadLoad, not TasksRelaxed: the decomposed counters are chase_lev-only
    // (all zero on locked), so the gate reads the backend's published load.
    if (may_deal &&
        !deal_policy.ShouldDeal(machine_->queue(kWorker).ReadLoad().task_count)) {
      may_deal = false;
    }
    if (may_deal) {
      const LoadSnapshot snapshot = machine_->Snapshot();
      scheduler->Yield();  // the selection->dealing gap where staleness develops
      for (uint32_t i = 0; i < num_workers(); ++i) {
        pending[i] = i == kWorker ? 0 : deal_channel_->DealtPendingFor(i);
      }
      const CpuId peer = deal_policy.PickRecipient(kWorker, snapshot, pending.data());
      if (peer != DealPolicy::kNoPeer) {
        const uint32_t quota = deal_policy.DealQuota(
            machine_->queue(kWorker).ReadLoad().task_count, snapshot.task_count[peer]);
        if (quota > 0) {
          window.clear();
          const uint32_t taken = machine_->queue(kWorker).TakeOwnerBatch(quota, window);
          // Item-by-item push so each mailbox op is its own decision point —
          // the checker can interleave the peer's drain mid-window.
          uint32_t placed = 0;
          while (placed < taken) {
            if (deal_channel_->PushDealt(peer, &window[placed], 1) != 1) {
              break;
            }
            scheduler->Note(kUserDealPush, static_cast<int64_t>(window[placed].id), peer);
            ++placed;
            scheduler->Yield();
          }
          if (placed < taken) {
            // Refused tail. Every refused item is announced; the healthy
            // dealer returns the tail to its own queue (prefix acceptance:
            // the dealer owns what the mailbox would not take), the broken
            // one drops it on the floor — the in-transit loss
            // no-lost-dealt-items exists to catch.
            for (uint32_t i = placed; i < taken; ++i) {
              scheduler->Note(kUserDealShed, static_cast<int64_t>(window[i].id), peer);
            }
            if (!config_.broken_deal_window) {
              machine_->queue(kWorker).PushBatchOwner(window.data() + placed,
                                                      taken - placed);
            }
            scheduler->Yield();
          }
        }
      }
    }
    std::optional<WorkItem> item = machine_->queue(kWorker).PopForRun();
    if (item.has_value()) {
      scheduler->Note(kUserExecuteItem, static_cast<int64_t>(item->id));
      scheduler->Yield();  // the item "runs" here
      machine_->queue(kWorker).FinishCurrent();
      continue;
    }
    if (steal_attempts >= config_.attempts_per_worker) {
      return;
    }
    // Reactive fallback, unconditional: a dealer below its threshold with an
    // empty queue behaves exactly like any drain-mode worker. A landed steal
    // is the one event that can raise the load back over the threshold, so
    // it re-arms the deal gate.
    ++steal_attempts;
    const uint64_t stolen_before = counters_[kWorker].items_stolen;
    StealOnce(kWorker, rng);
    may_deal |= counters_[kWorker].items_stolen > stolen_before;
    scheduler->Yield();
  }
}

void StealHarness::DealPeerBody(uint32_t worker) {
  Scheduler* scheduler = ActiveScheduler();
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + worker + 1);
  uint32_t steal_attempts = 0;
  std::vector<WorkItem> drained;
  for (;;) {
    // Dealt items first — they were pushed here precisely because this
    // worker looked idle, and the owner-push move is what keeps them on the
    // executor's accounting path (no admission, no re-count).
    if (deal_channel_->DealtPendingFor(worker) > 0) {
      drained.clear();
      deal_channel_->DrainDealt(worker, drained, config_.mailbox_capacity);
      if (!drained.empty()) {
        machine_->queue(worker).PushBatchOwner(drained.data(),
                                               static_cast<uint32_t>(drained.size()));
        for (const WorkItem& item : drained) {
          scheduler->Note(kUserDealDrain, static_cast<int64_t>(item.id), worker);
        }
      }
      scheduler->Yield();
    }
    std::optional<WorkItem> item = machine_->queue(worker).PopForRun();
    if (item.has_value()) {
      scheduler->Note(kUserExecuteItem, static_cast<int64_t>(item->id));
      scheduler->Yield();  // the item "runs" here
      machine_->queue(worker).FinishCurrent();
      continue;
    }
    if (steal_attempts >= config_.attempts_per_worker) {
      return;
    }
    ++steal_attempts;
    StealOnce(worker, rng);
    scheduler->Yield();
  }
}

void StealHarness::ProducerBody() {
  Scheduler* scheduler = ActiveScheduler();
  const uint32_t n = num_workers();
  // attempts_per_worker pushes, round-robin over the owners. Each push is
  // announced as admitted (kUserMailboxPush) or refused-full
  // (kUserMailboxShed): the dichotomy the accounting property relies on —
  // no third state, so every offered item is traceable.
  for (uint32_t i = 0; i < config_.attempts_per_worker; ++i) {
    const uint32_t target = 1 + (i % (n - 1));
    const uint64_t id = next_ingress_id_++;
    const WorkItem item{.id = id, .work_units = 1, .weight = 1024};
    if (mailboxes_->Push(target, item)) {
      scheduler->Note(kUserMailboxPush, static_cast<int64_t>(id), target);
    } else {
      scheduler->Note(kUserMailboxShed, static_cast<int64_t>(id), target);
    }
    scheduler->Yield();
  }
}

void StealHarness::IngressBody(uint32_t worker) {
  Scheduler* scheduler = ActiveScheduler();
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + worker + 1);
  uint32_t steal_attempts = 0;
  std::vector<WorkItem> drained;
  for (;;) {
    // Round boundary: drain the mailbox into the own runqueue first —
    // exactly the executor's ordering (admitted items beat stolen items).
    if (mailboxes_->PendingFor(worker) > 0) {
      drained.clear();
      mailboxes_->Drain(worker, drained, config_.mailbox_capacity);
      if (!drained.empty()) {
        // Owner-side batch push, exactly the executor's DrainIngress: on
        // chase_lev this is the only way admitted items reach the stealable
        // deque rather than the external-submit inbox.
        machine_->queue(worker).PushBatchOwner(drained.data(),
                                               static_cast<uint32_t>(drained.size()));
        for (const WorkItem& item : drained) {
          scheduler->Note(kUserMailboxDrain, static_cast<int64_t>(item.id), worker);
        }
      }
      scheduler->Yield();
    }
    std::optional<WorkItem> item = machine_->queue(worker).PopForRun();
    if (item.has_value()) {
      scheduler->Note(kUserExecuteItem, static_cast<int64_t>(item->id));
      scheduler->Yield();  // the item "runs" here
      machine_->queue(worker).FinishCurrent();
      continue;
    }
    if (steal_attempts >= config_.attempts_per_worker) {
      return;
    }
    ++steal_attempts;
    StealOnce(worker, rng);
    scheduler->Yield();
  }
}

void StealHarness::WakeupProducerBody() {
  Scheduler* scheduler = ActiveScheduler();
  const uint32_t n = num_workers();
  for (uint32_t i = 0; i < config_.attempts_per_worker; ++i) {
    const uint32_t target = 1 + (i % (n - 1));
    const uint64_t id = next_ingress_id_++;
    const WorkItem item{.id = id, .work_units = 1, .weight = 1024};
    if (mailboxes_->Push(target, item)) {
      scheduler->Note(kUserMailboxPush, static_cast<int64_t>(id), target);
    } else {
      scheduler->Note(kUserMailboxShed, static_cast<int64_t>(id), target);
    }
    // NotifyIngress's ordering contract: the epoch bump strictly follows the
    // item becoming mailbox-visible, so an owner that parks on a pre-push
    // sample is always released and re-drains.
    scheduler->OnSync(SyncOp::kEpochBump, &epoch_);
    ++epoch_;
    scheduler->Note(kUserEpochBump, static_cast<int64_t>(epoch_));
    scheduler->Yield();
  }
  // The executor's quit-path ordering: done becomes observable strictly
  // after the last push, then one final bump releases any owner that parked
  // between that push's bump and this flag flipping.
  producer_done_ = true;
  scheduler->OnSync(SyncOp::kEpochBump, &epoch_);
  ++epoch_;
  scheduler->Note(kUserEpochBump, static_cast<int64_t>(epoch_));
}

void StealHarness::WakeupWorkerBody(uint32_t worker) {
  Scheduler* scheduler = ActiveScheduler();
  std::vector<WorkItem> drained;
  for (;;) {
    // WorkerMain's ordering contract in miniature: sample the wakeup word
    // FIRST, then look for work. A notify landing after the sample moves the
    // epoch past it and turns the park below into a no-op; one landing
    // before the drain is simply seen by the drain. Sampling after the drain
    // instead would open the classic lost-wakeup window.
    scheduler->OnSync(SyncOp::kEpochLoad, &epoch_);
    const uint64_t sample = epoch_;
    bool progress = false;
    if (mailboxes_->PendingFor(worker) > 0) {
      drained.clear();
      mailboxes_->Drain(worker, drained, config_.mailbox_capacity);
      if (!drained.empty()) {
        machine_->queue(worker).PushBatchOwner(drained.data(),
                                               static_cast<uint32_t>(drained.size()));
        for (const WorkItem& item : drained) {
          scheduler->Note(kUserMailboxDrain, static_cast<int64_t>(item.id), worker);
        }
        progress = true;
      }
      scheduler->Yield();
    }
    while (std::optional<WorkItem> item = machine_->queue(worker).PopForRun()) {
      scheduler->Note(kUserExecuteItem, static_cast<int64_t>(item->id));
      scheduler->Yield();  // the item "runs" here
      machine_->queue(worker).FinishCurrent();
      progress = true;
    }
    if (progress) {
      continue;
    }
    if (!producer_done_) {
      // Park on the top-of-loop sample. If any bump (push or quit kick)
      // happened after the sample the predicate is already true and this
      // wake is immediate — the lost-wakeup-free property under test.
      scheduler->Note(kUserPark);
      scheduler->BlockUntil(SyncOp::kEpochLoad, &epoch_,
                            [this, sample] { return epoch_ != sample; });
      scheduler->Note(kUserWake);
      continue;
    }
    // done was set strictly after the producer's last push, so one more
    // pending check closes the race where that push landed after our drain
    // above — without it an owner could exit over a stranded item.
    if (mailboxes_->PendingFor(worker) > 0) {
      continue;
    }
    return;
  }
}

void StealHarness::EpochBody(uint32_t worker) {
  Scheduler* scheduler = ActiveScheduler();
  if (worker == 0) {
    // Supervisor: one escalation, modeled after Executor's epoch bump. The
    // explicit sync point keeps the bump visible to the dependence relation
    // (sleep-set pruning must not commute it past the workers' loads).
    scheduler->Yield();
    scheduler->OnSync(SyncOp::kEpochBump, &epoch_);
    ++epoch_;
    scheduler->Note(kUserEpochBump, static_cast<int64_t>(epoch_));
    return;
  }
  // Worker: the executor's lost-wakeup-free park. Reading a post-bump epoch
  // skips the park entirely; otherwise block until the supervisor moves it.
  scheduler->OnSync(SyncOp::kEpochLoad, &epoch_);
  if (epoch_ == 0) {
    scheduler->Note(kUserPark);
    scheduler->BlockUntil(SyncOp::kEpochLoad, &epoch_, [this] { return epoch_ != 0; });
  }
  scheduler->Note(kUserWake);
}

const PropertyReport* StealHarness::FirstViolation(const std::vector<PropertyReport>& reports) {
  for (const PropertyReport& report : reports) {
    if (!report.holds) {
      return &report;
    }
  }
  return nullptr;
}

Schedule StealHarness::MakeSchedule(const std::vector<uint32_t>& choices) const {
  Schedule schedule;
  schedule.harness = config_.mode;
  schedule.policy = config_.policy;
  schedule.initial_loads = config_.initial_loads;
  schedule.attempts_per_worker = config_.attempts_per_worker;
  schedule.seed = config_.seed;
  schedule.recheck = config_.recheck;
  schedule.max_steal_batch = config_.max_steal_batch;
  schedule.break_batch_bound = config_.break_batch_bound;
  schedule.mailbox_capacity = config_.mailbox_capacity;
  schedule.backend = runtime::QueueBackendName(config_.backend);
  schedule.deque_capacity = config_.deque_capacity;
  schedule.broken_steal_order = config_.broken_steal_order;
  schedule.tree_depth = config_.tree_depth;
  schedule.fanout = config_.fanout;
  schedule.broken_join_counter = config_.broken_join_counter;
  schedule.deal_window = config_.deal_window;
  schedule.broken_deal_window = config_.broken_deal_window;
  schedule.choices = choices;
  return schedule;
}

std::vector<PropertyReport> StealHarness::Evaluate(const ExecutionResult& result) {
  OPTSCHED_CHECK_MSG(machine_ != nullptr, "Evaluate before MakeBodies");
  std::vector<PropertyReport> reports;
  auto add = [&](const char* name, bool holds, std::string detail = "") {
    reports.push_back(PropertyReport{name, holds, std::move(detail)});
  };

  // Termination first: a deadlock or step-cap means the machine state cannot
  // be trusted (a worker may have been unwound mid-protocol).
  if (config_.mode == "epoch") {
    bool holds = !result.deadlock && !result.step_limit_hit;
    std::string detail = result.deadlock ? result.deadlock_note : "";
    if (holds) {
      // Every park must be answered by a wake of the same thread, and only
      // after the epoch bump.
      int64_t bump_index = -1;
      std::vector<int64_t> park_index(num_workers(), -1);
      for (size_t i = 0; i < result.events.size(); ++i) {
        const McEvent& event = result.events[i];
        if (event.user_kind == kUserEpochBump) {
          bump_index = static_cast<int64_t>(i);
        } else if (event.user_kind == kUserPark) {
          park_index[event.thread] = static_cast<int64_t>(i);
        } else if (event.user_kind == kUserWake) {
          if (park_index[event.thread] >= 0 && bump_index < park_index[event.thread]) {
            holds = false;
            detail = StrFormat("worker %u woke without an epoch bump after its park",
                               event.thread);
          }
          park_index[event.thread] = -1;
        }
      }
      for (uint32_t w = 0; w < num_workers(); ++w) {
        if (park_index[w] >= 0) {
          holds = false;
          detail = StrFormat("worker %u parked and never woke", w);
        }
      }
    }
    add("epoch-wakeup", holds, std::move(detail));
    return reports;
  }

  if (result.deadlock || result.step_limit_hit) {
    add("termination", false,
        result.deadlock ? result.deadlock_note : "decision-step limit hit");
    return reports;
  }
  add("termination", true);

  // --- published-depth: the lock-free load publication agrees with the -------
  // structural queue state at quiescence. Evaluated BEFORE the conservation
  // drain below mutates the queues. A batched operation that forgot its
  // publish (locked backend: seqlock write; chase_lev: counter update) shows
  // up here as a stale depth no observation-based property would notice.
  {
    bool holds = true;
    std::string detail;
    for (uint32_t q = 0; q < num_workers() && holds; ++q) {
      runtime::ConcurrentRunQueue& queue = machine_->queue(q);
      const runtime::LoadPair published = queue.ReadLoad();
      const runtime::LoadPair exact = queue.ExactLoad();
      if (published.task_count != exact.task_count ||
          published.weighted_load != exact.weighted_load) {
        holds = false;
        detail = StrFormat("queue %u publishes %lld tasks / %lld weight but holds %lld / %lld",
                           q, static_cast<long long>(published.task_count),
                           static_cast<long long>(published.weighted_load),
                           static_cast<long long>(exact.task_count),
                           static_cast<long long>(exact.weighted_load));
      }
    }
    add("published-depth", holds, std::move(detail));
  }

  // --- wakeup: no owner may exit over a mailbox-resident item ----------------
  // Checked BEFORE the conservation drain empties the mailboxes: in "wakeup"
  // mode (unlike "ingress") every admitted item must have been drained by
  // its owner — a leftover means a notify was lost between drain and park.
  const bool wakeup_mode = config_.mode == "wakeup";
  if (wakeup_mode) {
    bool holds = true;
    std::string detail;
    for (uint32_t w = 0; w < num_workers() && holds; ++w) {
      const int64_t pending = mailboxes_->PendingFor(w);
      if (pending > 0) {
        holds = false;
        detail = StrFormat("owner %u exited with %lld items stranded in its mailbox", w,
                           static_cast<long long>(pending));
      }
    }
    add("wakeup-no-stranded-items", holds, std::move(detail));
  }

  // --- no-lost-items: initial multiset == remaining ∪ executed ---------------
  // Ingress mode widens both sides: every item the mailbox ACCEPTED joins
  // the expected multiset (kUserMailboxPush; refused pushes never entered
  // the system and are accounted by their kUserMailboxShed event alone),
  // and mailbox-resident items still undrained at the end join the
  // accounted side — admitted work may be in a queue, executed, or still in
  // its mailbox, but never gone.
  // Forkjoin mode widens the expected side the same way: every dynamically
  // spawned task (kUserTaskSpawn — the root is seeded, so it is in
  // initial_item_ids_) must be executed or still queued, never gone
  // (no-lost-spawns: conservation over work created mid-exploration).
  // Deal mode widens only the accounted side: dealt items may sit in a deal
  // mailbox at termination (the recipient exited before draining) — resident,
  // not lost. The resident ids double as the deal channel's closing balance
  // for deal-or-steal-conservation below.
  const bool ingress_mode = config_.mode == "ingress" || wakeup_mode;
  const bool forkjoin_mode = config_.mode == "forkjoin";
  const bool deal_mode = config_.mode == "deal";
  std::vector<uint64_t> deal_residents;
  std::vector<uint64_t> seen;
  std::vector<uint64_t> expected = initial_item_ids_;
  for (const McEvent& event : result.events) {
    if (event.user_kind == kUserExecuteItem) {
      seen.push_back(static_cast<uint64_t>(event.arg0));
    } else if (ingress_mode && event.user_kind == kUserMailboxPush) {
      expected.push_back(static_cast<uint64_t>(event.arg0));
    } else if (forkjoin_mode && event.user_kind == kUserTaskSpawn) {
      expected.push_back(static_cast<uint64_t>(event.arg0));
    }
  }
  for (uint32_t q = 0; q < num_workers(); ++q) {
    runtime::ConcurrentRunQueue& queue = machine_->queue(q);
    while (std::optional<WorkItem> item = queue.PopForRun()) {
      seen.push_back(item->id);
      queue.FinishCurrent();
    }
  }
  if (ingress_mode) {
    std::vector<WorkItem> leftover;
    for (uint32_t w = 0; w < num_workers(); ++w) {
      mailboxes_->Drain(w, leftover, ~0u);
    }
    for (const WorkItem& item : leftover) {
      seen.push_back(item.id);
    }
  }
  if (deal_mode) {
    std::vector<WorkItem> leftover;
    for (uint32_t w = 0; w < num_workers(); ++w) {
      deal_channel_->DrainDealt(w, leftover, ~0u);
    }
    for (const WorkItem& item : leftover) {
      seen.push_back(item.id);
      deal_residents.push_back(item.id);
    }
  }
  std::sort(seen.begin(), seen.end());
  std::sort(expected.begin(), expected.end());
  const char* conservation_name = forkjoin_mode  ? "no-lost-spawns"
                                  : deal_mode    ? "no-lost-dealt-items"
                                  : ingress_mode ? "no-lost-admitted-items"
                                                 : "no-lost-items";
  add(conservation_name, seen == expected,
      seen == expected ? ""
                       : StrFormat("item multiset changed: %zu seeded+admitted, %zu accounted",
                                   expected.size(), seen.size()));

  // --- steal-safety: no successful steal idled its victim --------------------
  // Batched steals included: arg1 is the victim's task count after the WHOLE
  // batch left, read under both locks.
  uint64_t successes = 0;
  uint64_t items_moved = 0;
  for (const McEvent& event : result.events) {
    if (event.user_kind == kUserStealBatch) {
      items_moved += static_cast<uint64_t>(event.arg0);
      continue;
    }
    if (event.user_kind != kUserStealOk) {
      continue;
    }
    ++successes;
    if (event.arg1 < 1) {
      add("steal-safety", false,
          StrFormat("worker %u idled victim %lld at step %u", event.thread,
                    static_cast<long long>(event.arg0), event.step));
    }
  }
  if (reports.back().name != "steal-safety") {
    add("steal-safety", true);
  }

  // --- publish-batching: ≤ 2 seqlock publishes per steal critical section ----
  // One per queue, however many items the batch moved. This is the seqlock
  // write-count assertion: per-item publishing under both held locks would
  // show up here as seqlock_writes == items_moved + 1.
  {
    bool holds = true;
    std::string detail;
    for (const McEvent& event : result.events) {
      if (event.user_kind == kUserStealBatch && event.arg1 > 2) {
        holds = false;
        detail = StrFormat(
            "worker %u published %lld times in one steal critical section (%lld items)",
            event.thread, static_cast<long long>(event.arg1),
            static_cast<long long>(event.arg0));
        break;
      }
    }
    add("publish-batching", holds, std::move(detail));
  }

  if (deal_mode) {
    // --- deal-or-steal-conservation: the deal channel itself conserves ------
    // Every drained item was pushed (the mailbox fabricates nothing) and
    // every pushed item was drained or is still resident at termination (the
    // mailbox loses nothing). Together with no-lost-dealt-items above, this
    // pins migration to exactly two sanctioned channels: the deal mailbox or
    // the steal protocol — there is no third path work can take, and neither
    // path can drop an item in transit.
    {
      std::vector<uint64_t> pushed;
      std::vector<uint64_t> accounted = deal_residents;
      for (const McEvent& event : result.events) {
        if (event.user_kind == kUserDealPush) {
          pushed.push_back(static_cast<uint64_t>(event.arg0));
        } else if (event.user_kind == kUserDealDrain) {
          accounted.push_back(static_cast<uint64_t>(event.arg0));
        }
      }
      std::sort(pushed.begin(), pushed.end());
      std::sort(accounted.begin(), accounted.end());
      add("deal-or-steal-conservation", pushed == accounted,
          pushed == accounted
              ? ""
              : StrFormat("deal channel imbalance: %zu pushed, %zu drained+resident",
                          pushed.size(), accounted.size()));
    }
    return reports;
  }

  if (forkjoin_mode) {
    // --- join-fires-exactly-once: every forked continuation's counter reaches
    // zero exactly once. A lost decrement (broken_join_counter's plain
    // load/store race) strands the continuation — fork with no fire; the
    // acq_rel RMW chain makes a double fire structurally impossible, but the
    // property checks both directions anyway.
    {
      bool holds = true;
      std::string detail;
      std::vector<uint64_t> forked;
      std::map<uint64_t, uint64_t> fires;
      for (const McEvent& event : result.events) {
        if (event.user_kind == kUserTaskFork) {
          forked.push_back(static_cast<uint64_t>(event.arg0));
        } else if (event.user_kind == kUserJoinFire) {
          ++fires[static_cast<uint64_t>(event.arg0)];
        }
      }
      for (uint64_t id : forked) {
        const auto it = fires.find(id);
        const uint64_t count = it == fires.end() ? 0 : it->second;
        if (count != 1) {
          holds = false;
          detail = StrFormat("continuation %llu forked but its join fired %llu times",
                             static_cast<unsigned long long>(id),
                             static_cast<unsigned long long>(count));
          break;
        }
        fires.erase(it);
      }
      if (holds && !fires.empty()) {
        holds = false;
        detail = StrFormat("continuation %llu fired without a fork",
                           static_cast<unsigned long long>(fires.begin()->first));
      }
      add("join-fires-exactly-once", holds, std::move(detail));
    }

    // --- no-worker-blocks-on-join: the continuation-counting discipline never
    // waits — a finishing child decrements and moves on. Termination without
    // deadlock already held above; any park event would mean a worker
    // suspended inside the protocol.
    {
      bool holds = true;
      std::string detail;
      for (const McEvent& event : result.events) {
        if (event.user_kind == kUserPark) {
          holds = false;
          detail = StrFormat("worker %u parked inside the fork-join protocol", event.thread);
          break;
        }
      }
      add("no-worker-blocks-on-join", holds, std::move(detail));
    }

    // --- bounded-steals-on-tree: migrations on a rooted spawn tree stay in
    // the O(W·depth) regime (Leiserson/Schardl/Suksompong), never the task
    // count. The constant here is deliberately generous — the property
    // guards the asymptotic shape, the E16 bench measures the constant.
    {
      const uint64_t bound = static_cast<uint64_t>(num_workers()) *
                             (config_.tree_depth + 2) * config_.fanout;
      add("bounded-steals-on-tree", items_moved <= bound,
          items_moved <= bound
              ? ""
              : StrFormat("%llu items migrated vs W*(depth+2)*fanout = %llu",
                          static_cast<unsigned long long>(items_moved),
                          static_cast<unsigned long long>(bound)));
    }
    return reports;
  }

  if (config_.mode != "balance") {
    return reports;
  }

  // --- bounded-steals: migrated items ≤ d(initial)/2 (§4.3) ------------------
  // Each permitted migration strictly decreases the potential by ≥ 2, so the
  // ITEM count is bounded by d0/2 — and since every successful action moves
  // ≥ 1 item, the action count inherits the same bound (successes ≤ items).
  const int64_t bound = InitialPotential() / 2;
  const bool actions_bounded = successes <= items_moved;
  const bool items_bounded = static_cast<int64_t>(items_moved) <= bound;
  add("bounded-steals", actions_bounded && items_bounded,
      actions_bounded && items_bounded
          ? ""
          : StrFormat("%llu actions / %llu migrated items vs d0/2 = %lld",
                      static_cast<unsigned long long>(successes),
                      static_cast<unsigned long long>(items_moved),
                      static_cast<long long>(bound)));

  // --- failure-causality: every failed re-check has a concurrent successful
  // steal inside its snapshot→recheck window (§4.2) --------------------------
  // Locked backend only. On chase_lev the causality holds by construction —
  // TakeTop fails only because a competitor's CAS moved top — but that
  // competitor's kUserStealOk NOTE is emitted after its TrySteal returns and
  // may be scheduled past this thread's recheck event, so the event-window
  // scan below would flag spurious violations on a sound protocol.
  if (config_.backend == runtime::QueueBackend::kLocked) {
    bool holds = true;
    std::string detail;
    std::vector<int64_t> last_snapshot(num_workers(), -1);
    for (size_t i = 0; i < result.events.size() && holds; ++i) {
      const McEvent& event = result.events[i];
      if (event.user_kind == kUserSnapshot) {
        last_snapshot[event.thread] = static_cast<int64_t>(i);
      } else if (event.user_kind == kUserStealFailRecheck) {
        bool caused = false;
        for (int64_t j = last_snapshot[event.thread] + 1; j < static_cast<int64_t>(i); ++j) {
          const McEvent& cause = result.events[j];
          if (cause.user_kind == kUserStealOk && cause.thread != event.thread) {
            caused = true;
            break;
          }
        }
        if (!caused) {
          holds = false;
          detail = StrFormat(
              "worker %u failed its re-check at step %u with no concurrent steal in the window",
              event.thread, event.step);
        }
      }
    }
    add("failure-causality", holds, std::move(detail));
  }

  return reports;
}

}  // namespace optsched::mc
