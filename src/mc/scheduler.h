// Deterministic cooperative scheduler: runs N virtual workers as fibers and
// turns every mc_hooks synchronization point into an explicit scheduling
// decision (docs/model_checking.md).
//
// One execution = one schedule: at each decision point the installed Strategy
// picks which enabled virtual thread runs next; the chosen thread executes
// its pending synchronization action and runs (uninterrupted — this is the
// atomicity granularity) up to its next hook, where it suspends again. The
// recorded choice sequence fully determines the execution, which is what
// makes record/replay exact and exhaustive exploration possible.
//
// Blocking points (contended lock, seqlock reader racing a writer, a parked
// worker waiting for an epoch bump) disable the thread until the predicate
// holds; enabledness is re-evaluated before every decision. If unfinished
// threads exist but none is enabled, the execution is a deadlock — itself a
// reportable property violation (e.g. "escalation epoch never woke the
// parked worker").

#ifndef OPTSCHED_SRC_MC_SCHEDULER_H_
#define OPTSCHED_SRC_MC_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/mc/fiber.h"
#include "src/runtime/mc_hooks.h"

namespace optsched::mc {

using runtime::mc_hooks::SyncOp;

inline constexpr uint32_t kNoThread = ~0u;
// A Strategy may return this from Pick() to abandon the execution (e.g. the
// DFS explorer pruning a sleep-set-redundant branch): fibers are unwound,
// the result is marked aborted, and no properties are evaluated over it.
inline constexpr uint32_t kAbortExecution = ~0u - 1;

// The synchronization action a suspended virtual thread will perform when
// next scheduled.
struct ThreadOp {
  SyncOp op = SyncOp::kThreadStart;
  // Dense per-execution id of the synchronization object (assigned on first
  // touch, so it is stable across replays of the same harness), used by the
  // dependence relation and serialized event streams. 0 = none.
  uint32_t object = 0;

  bool operator==(const ThreadOp& other) const = default;
};

// Two pending ops commute iff they touch different objects or neither
// writes; dependent ops are what wake sleeping threads in sleep-set pruning.
bool OpsDependent(const ThreadOp& a, const ThreadOp& b);

// Whether a sleeping thread with pending op `sleeper` may remain asleep after
// another thread executed a segment starting at `executed`. Stricter than
// !OpsDependent: lock acquisitions never stay asleep, because releases are
// recorded without a decision point and any segment may hide one.
bool CanStaySleeping(const ThreadOp& sleeper, const ThreadOp& executed);

// One entry of an execution's event stream: thread `thread` performed (or
// announced) `op` at decision step `step`. Harness-level events (steal
// outcomes, item executions, parks/wakes) are interleaved via Note() with
// op == SyncOp::kYield and a nonzero user kind.
struct McEvent {
  uint32_t step = 0;
  uint32_t thread = 0;
  ThreadOp op;
  // Harness event payload (0 = pure sync event).
  uint32_t user_kind = 0;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  int64_t arg2 = 0;

  bool operator==(const McEvent& other) const = default;
};

// Harness event kinds (user_kind). Kept here so the scheduler, properties,
// and trace export share one vocabulary.
enum UserEventKind : uint32_t {
  kUserNone = 0,
  kUserSnapshot = 1,     // arg0 = attempt index
  kUserStealOk = 2,      // arg0 = victim, arg1 = victim tasks after, arg2 = item id
  kUserStealFailRecheck = 3,  // arg0 = victim
  kUserStealFailNoTask = 4,   // arg0 = victim
  kUserStealEmptyFilter = 5,
  kUserExecuteItem = 6,  // arg0 = item id
  kUserPark = 7,         // waiting on the escalation epoch
  kUserWake = 8,         // resumed after an epoch bump
  kUserEpochBump = 9,
  // Batch facts of the immediately preceding kUserStealOk (same thread):
  // arg0 = items moved, arg1 = seqlock publishes inside the critical section
  // (publish batching requires <= 2), arg2 = victim.
  kUserStealBatch = 10,
  // Ingress harness (bounded-mailbox drain, docs/serving.md):
  kUserMailboxPush = 11,   // arg0 = item id, arg1 = target worker (admitted)
  kUserMailboxShed = 12,   // arg0 = item id, arg1 = target worker (refused: full)
  kUserMailboxDrain = 13,  // arg0 = item id, arg1 = owner (moved into runqueue)
  // Forkjoin harness (continuation-counted task layer, docs/tasks.md):
  kUserTaskSpawn = 14,  // arg0 = item id, arg1 = spawning worker (own-queue push)
  kUserTaskFork = 15,   // arg0 = continuation id, arg1 = declared children
  kUserJoinFire = 16,   // arg0 = continuation id (join counter reached zero)
  // Deal harness (proactive work-dealing, docs/runtime.md#work-dealing):
  kUserDealPush = 17,   // arg0 = item id, arg1 = recipient (accepted into deal mailbox)
  kUserDealShed = 18,   // arg0 = item id, arg1 = recipient (refused: mailbox full)
  kUserDealDrain = 19,  // arg0 = item id, arg1 = owner (moved deal mailbox -> runqueue)
};

const char* UserEventKindName(uint32_t kind);

// What a Strategy sees at a decision point.
struct SchedulePoint {
  uint32_t step = 0;
  // Enabled (runnable, unfinished) virtual threads, ascending ids.
  std::vector<uint32_t> enabled;
  // pending[i] = the op enabled[i] will perform when chosen.
  std::vector<ThreadOp> pending;
  // Thread chosen at the previous decision (kNoThread at step 0).
  uint32_t last_running = kNoThread;
  // True if last_running appears in `enabled` (switching away from it at a
  // non-yield point is a preemption, CHESS-style).
  bool last_still_enabled = false;
  // Pending op of last_running when still enabled (kYield boundaries are
  // free switch points and do not count toward the preemption bound).
  ThreadOp last_pending;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  // Returns the id of the thread to run next; must be a member of
  // point.enabled.
  virtual uint32_t Pick(const SchedulePoint& point) = 0;
  // Called once after the execution finishes (for strategies that carry
  // state across executions, e.g. DFS backtracking).
  virtual void OnExecutionDone() {}
};

struct ExecutionResult {
  std::vector<uint32_t> choices;  // thread chosen at each decision point
  std::vector<McEvent> events;
  uint32_t preemptions = 0;
  bool deadlock = false;
  std::string deadlock_note;
  bool step_limit_hit = false;
  bool aborted = false;  // abandoned by the strategy (e.g. sleep-set pruned)
};

class Scheduler : public runtime::mc_hooks::Interposer {
 public:
  struct Options {
    // Hard cap on decision points per execution (runaway-loop backstop; a
    // capped execution is reported, never silently truncated).
    uint32_t max_steps = 1u << 20;
  };

  Scheduler();
  explicit Scheduler(Options options);

  // Runs `bodies` to completion under `strategy` and returns the execution
  // record. Installs itself as the mc_hooks interposer for the duration;
  // bodies run as fibers on the calling OS thread.
  ExecutionResult Run(const std::vector<std::function<void()>>& bodies, Strategy& strategy);

  // --- Called from inside fiber bodies ---------------------------------------

  // Records a harness-level event attributed to the calling virtual thread.
  void Note(uint32_t user_kind, int64_t arg0 = 0, int64_t arg1 = 0, int64_t arg2 = 0);

  // Explicit fair scheduling point (a switch here is not a preemption).
  void Yield();

  // Blocks the calling virtual thread until `ready()` is true.
  void BlockUntil(SyncOp op, const void* addr, std::function<bool()> ready);

  uint32_t current_thread() const { return current_; }

  // --- Interposer ------------------------------------------------------------
  void OnSync(SyncOp op, const void* addr) override;
  void OnBlock(SyncOp op, const void* addr, bool (*ready)(const void*),
               const void* arg) override;

 private:
  struct ThreadState {
    std::unique_ptr<Fiber> fiber;
    ThreadOp pending;
    std::function<bool()> blocked_on;  // empty = runnable
    bool finished = false;
  };

  uint32_t ObjectId(const void* addr);
  void SuspendCurrent(SyncOp op, const void* addr);

  Options options_;
  std::vector<ThreadState> threads_;
  ExecutionResult result_;
  std::map<const void*, uint32_t> object_ids_;
  uint32_t current_ = kNoThread;
  uint32_t step_ = 0;
  bool running_execution_ = false;
};

// The Scheduler currently driving a controlled execution on this OS thread
// (null outside Run). Harness bodies use it to Note()/Yield() without holding
// a reference to the per-execution scheduler instance.
Scheduler* ActiveScheduler();

}  // namespace optsched::mc

#endif  // OPTSCHED_SRC_MC_SCHEDULER_H_
