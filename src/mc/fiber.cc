#include "src/mc/fiber.h"

#include "src/base/check.h"

#if defined(__SANITIZE_ADDRESS__)
#define OPTSCHED_MC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OPTSCHED_MC_ASAN 1
#endif
#endif

#ifdef OPTSCHED_MC_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace optsched::mc {

namespace {

// Trampoline argument channel: makecontext only passes ints, and the fiber
// layer is strictly single-OS-thread, so a thread_local slot is exact.
thread_local Fiber* tls_entering_fiber = nullptr;

struct AsanSwitch {
  const void* bottom = nullptr;
  size_t size = 0;
};

// The scheduler-side stack extent, learned on the first entry into any fiber
// (ASan reports the stack we came from); needed to annotate switches back.
thread_local AsanSwitch tls_scheduler_stack;

void AsanStartSwitch(void** fake_stack_save, const void* bottom, size_t size) {
#ifdef OPTSCHED_MC_ASAN
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

void AsanFinishSwitch(void* fake_stack_save, const void** bottom_out, size_t* size_out) {
#ifdef OPTSCHED_MC_ASAN
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_out, size_out);
#else
  (void)fake_stack_save;
  if (bottom_out != nullptr) *bottom_out = nullptr;
  if (size_out != nullptr) *size_out = 0;
#endif
}

}  // namespace

Fiber::Fiber(std::function<void()> body, size_t stack_size)
    : stack_(new char[stack_size]), stack_size_(stack_size), body_(std::move(body)) {
  OPTSCHED_CHECK(stack_size_ >= 16 * 1024);
}

Fiber::~Fiber() {
  // A live fiber's stack holds objects with destructors; unwind it first.
  if (started_ && !finished_) {
    Abort();
  }
}

void Fiber::Trampoline() {
  Fiber* self = tls_entering_fiber;
  tls_entering_fiber = nullptr;
  // First arrival on this stack: no fake stack to restore; record where the
  // scheduler's stack lives for the switches back.
  AsanFinishSwitch(nullptr, &tls_scheduler_stack.bottom, &tls_scheduler_stack.size);
  if (!self->aborting_) {
    try {
      self->body_();
    } catch (const FiberAbort&) {
      // Unwound on abandonment; nothing to do — the stack is now clean.
    }
  }
  self->finished_ = true;
  // Final exit: a null save handle tells ASan to destroy this fiber's fake
  // stack rather than preserve it for a return that will never happen.
  AsanStartSwitch(nullptr, tls_scheduler_stack.bottom, tls_scheduler_stack.size);
  swapcontext(&self->context_, &self->return_context_);
  OPTSCHED_CHECK_MSG(false, "finished fiber resumed");
}

void Fiber::Resume() {
  OPTSCHED_CHECK(!finished_);
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_size_;
    context_.uc_link = nullptr;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 0);
    tls_entering_fiber = this;
  }
  AsanStartSwitch(&fake_stack_return_, stack_.get(), stack_size_);
  swapcontext(&return_context_, &context_);
  AsanFinishSwitch(fake_stack_return_, nullptr, nullptr);
}

void Fiber::Yield() {
  AsanStartSwitch(&fake_stack_fiber_, tls_scheduler_stack.bottom, tls_scheduler_stack.size);
  swapcontext(&context_, &return_context_);
  AsanFinishSwitch(fake_stack_fiber_, nullptr, nullptr);
  if (aborting_) {
    throw FiberAbort{};
  }
}

void Fiber::Abort() {
  if (finished_) {
    return;
  }
  aborting_ = true;
  Resume();  // pending Yield() throws; trampoline catches and finishes
  OPTSCHED_CHECK(finished_);
}

}  // namespace optsched::mc
