#include "src/mc/trace_export.h"

#include "src/base/str.h"
#include "src/trace/chrome_trace.h"

namespace optsched::mc {

using trace::EventType;
using trace::TraceEvent;

std::vector<TraceEvent> ToTraceEvents(const std::vector<McEvent>& events, bool include_sync) {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (const McEvent& event : events) {
    TraceEvent te;
    te.time = event.step;
    te.cpu = event.thread;
    switch (event.user_kind) {
      case kUserStealOk:
        te.type = EventType::kSteal;
        te.other_cpu = static_cast<CpuId>(event.arg0);
        te.task = static_cast<TaskId>(event.arg2);
        te.detail = event.arg1;  // victim tasks after (steal-safety witness)
        break;
      case kUserStealFailRecheck:
      case kUserStealFailNoTask:
        te.type = EventType::kStealFailed;
        te.other_cpu = static_cast<CpuId>(event.arg0);
        te.detail = event.user_kind == kUserStealFailRecheck ? 1 : 2;
        break;
      case kUserStealEmptyFilter:
        te.type = EventType::kStealFailed;
        te.detail = 3;
        break;
      case kUserSnapshot:
        te.type = EventType::kRound;
        te.detail = event.arg0;  // attempt index
        break;
      case kUserExecuteItem:
        te.type = EventType::kScheduleIn;
        te.task = static_cast<TaskId>(event.arg0);
        break;
      case kUserPark:
        te.type = EventType::kBackoffPark;
        break;
      case kUserWake:
        te.type = EventType::kEscalationWakeup;
        break;
      case kUserEpochBump:
        te.type = EventType::kEscalation;
        te.detail = event.arg0;  // new epoch
        break;
      case kUserStealBatch:
        // Batch metadata for the preceding steal-ok; the steal row already
        // carries the pair, so this only adds noise to a human timeline.
        continue;
      case kUserNone:
      default:
        if (!include_sync) {
          continue;
        }
        te.type = EventType::kRound;
        te.task = 0;
        te.detail = -static_cast<int64_t>(static_cast<uint32_t>(event.op.op));
        break;
    }
    out.push_back(te);
  }
  return out;
}

std::string ExecutionToChromeTraceJson(const ExecutionResult& result, uint32_t num_workers,
                                       bool include_sync) {
  std::vector<std::string> lanes;
  lanes.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    lanes.push_back(StrFormat("worker %u", w));
  }
  return trace::ToChromeTraceJson(ToTraceEvents(result.events, include_sync),
                                  /*dropped=*/0, lanes);
}

}  // namespace optsched::mc
