#include "src/mc/scheduler.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::mc {

using optsched::StrFormat;

namespace {
thread_local Scheduler* tls_active_scheduler = nullptr;
}  // namespace

Scheduler* ActiveScheduler() { return tls_active_scheduler; }

bool OpsDependent(const ThreadOp& a, const ThreadOp& b) {
  if (a.object == 0 || b.object == 0 || a.object != b.object) {
    return false;
  }
  return runtime::mc_hooks::SyncOpWrites(a.op) || runtime::mc_hooks::SyncOpWrites(b.op);
}

bool CanStaySleeping(const ThreadOp& sleeper, const ThreadOp& executed) {
  // Lock releases are not decision points, so any executed segment may hide
  // a release of any lock; a sleeping thread about to take a lock therefore
  // never provably commutes with it. Waking acquires on every step is the
  // conservative (sound) choice; everything else uses the object relation.
  switch (sleeper.op) {
    case SyncOp::kLockAcquire:
    case SyncOp::kLockTry:
    case SyncOp::kLockWait:
      return false;
    default:
      return !OpsDependent(sleeper, executed);
  }
}

const char* UserEventKindName(uint32_t kind) {
  switch (kind) {
    case kUserNone: return "sync";
    case kUserSnapshot: return "snapshot";
    case kUserStealOk: return "steal-ok";
    case kUserStealFailRecheck: return "steal-fail-recheck";
    case kUserStealFailNoTask: return "steal-fail-no-task";
    case kUserStealEmptyFilter: return "steal-empty-filter";
    case kUserExecuteItem: return "execute-item";
    case kUserPark: return "park";
    case kUserWake: return "wake";
    case kUserEpochBump: return "epoch-bump";
    case kUserStealBatch: return "steal-batch";
    case kUserMailboxPush: return "mailbox-push";
    case kUserMailboxShed: return "mailbox-shed";
    case kUserMailboxDrain: return "mailbox-drain";
    case kUserTaskSpawn: return "task-spawn";
    case kUserTaskFork: return "task-fork";
    case kUserJoinFire: return "join-fire";
    case kUserDealPush: return "deal-push";
    case kUserDealShed: return "deal-shed";
    case kUserDealDrain: return "deal-drain";
  }
  return "?";
}

Scheduler::Scheduler() : Scheduler(Options()) {}

Scheduler::Scheduler(Options options) : options_(options) {}

uint32_t Scheduler::ObjectId(const void* addr) {
  if (addr == nullptr) {
    return 0;
  }
  auto [it, inserted] = object_ids_.emplace(addr, static_cast<uint32_t>(object_ids_.size()) + 1);
  (void)inserted;
  return it->second;
}

void Scheduler::SuspendCurrent(SyncOp op, const void* addr) {
  ThreadState& thread = threads_[current_];
  thread.pending = ThreadOp{op, ObjectId(addr)};
  result_.events.push_back(McEvent{.step = step_, .thread = current_, .op = thread.pending});
  thread.fiber->Yield();
}

void Scheduler::OnSync(SyncOp op, const void* addr) {
  // Hook calls outside a controlled execution (harness setup on the
  // scheduler context, destructor unwinds during abandonment) are ignored.
  if (!running_execution_ || current_ == kNoThread) {
    return;
  }
  // Lock releases are recorded but are NOT decision points (CHESS does the
  // same). Releases fire from noexcept destructors (~DualLockGuard,
  // ~lock_guard): a fiber suspended there could not be abort-unwound without
  // std::terminate. The cost is that a waiter can never run between a
  // release and the releasing thread's next sync point; the sleep-set side
  // is handled by CanStaySleeping's conservative treatment of acquires.
  if (op == SyncOp::kLockRelease) {
    result_.events.push_back(
        McEvent{.step = step_, .thread = current_, .op = ThreadOp{op, ObjectId(addr)}});
    return;
  }
  SuspendCurrent(op, addr);
}

void Scheduler::OnBlock(SyncOp op, const void* addr, bool (*ready)(const void*),
                        const void* arg) {
  if (!running_execution_ || current_ == kNoThread) {
    return;
  }
  threads_[current_].blocked_on = [ready, arg] { return ready(arg); };
  SuspendCurrent(op, addr);
}

void Scheduler::BlockUntil(SyncOp op, const void* addr, std::function<bool()> ready) {
  OPTSCHED_CHECK(running_execution_ && current_ != kNoThread);
  threads_[current_].blocked_on = std::move(ready);
  SuspendCurrent(op, addr);
}

void Scheduler::Yield() {
  if (!running_execution_ || current_ == kNoThread) {
    return;
  }
  SuspendCurrent(SyncOp::kYield, nullptr);
}

void Scheduler::Note(uint32_t user_kind, int64_t arg0, int64_t arg1, int64_t arg2) {
  if (!running_execution_ || current_ == kNoThread) {
    return;
  }
  result_.events.push_back(McEvent{.step = step_,
                                   .thread = current_,
                                   .op = ThreadOp{SyncOp::kYield, 0},
                                   .user_kind = user_kind,
                                   .arg0 = arg0,
                                   .arg1 = arg1,
                                   .arg2 = arg2});
}

ExecutionResult Scheduler::Run(const std::vector<std::function<void()>>& bodies,
                               Strategy& strategy) {
  OPTSCHED_CHECK(!bodies.empty());
  OPTSCHED_CHECK(!running_execution_);
  result_ = ExecutionResult{};
  threads_.clear();
  object_ids_.clear();
  step_ = 0;
  current_ = kNoThread;
  threads_.resize(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    threads_[i].fiber = std::make_unique<Fiber>(bodies[i]);
    threads_[i].pending = ThreadOp{SyncOp::kThreadStart, 0};
  }

  runtime::mc_hooks::Interposer* previous = runtime::mc_hooks::SetInterposer(this);
  Scheduler* previous_active = tls_active_scheduler;
  tls_active_scheduler = this;
  running_execution_ = true;
  uint32_t last = kNoThread;

  for (;;) {
    SchedulePoint point;
    point.step = step_;
    bool any_unfinished = false;
    for (uint32_t i = 0; i < threads_.size(); ++i) {
      ThreadState& thread = threads_[i];
      if (thread.finished || thread.fiber->finished()) {
        thread.finished = true;
        continue;
      }
      any_unfinished = true;
      if (thread.blocked_on && !thread.blocked_on()) {
        continue;
      }
      point.enabled.push_back(i);
      point.pending.push_back(thread.pending);
    }
    if (!any_unfinished) {
      break;
    }
    if (point.enabled.empty()) {
      result_.deadlock = true;
      std::string note = "all unfinished threads blocked:";
      for (uint32_t i = 0; i < threads_.size(); ++i) {
        if (!threads_[i].finished) {
          note += StrFormat(" t%u@%s(obj%u)", i,
                            runtime::mc_hooks::SyncOpName(threads_[i].pending.op),
                            threads_[i].pending.object);
        }
      }
      result_.deadlock_note = note;
      break;
    }
    if (step_ >= options_.max_steps) {
      result_.step_limit_hit = true;
      break;
    }
    point.last_running = last;
    point.last_still_enabled =
        last != kNoThread &&
        std::find(point.enabled.begin(), point.enabled.end(), last) != point.enabled.end();
    if (point.last_still_enabled) {
      point.last_pending = threads_[last].pending;
    }

    const uint32_t chosen = strategy.Pick(point);
    if (chosen == kAbortExecution) {
      result_.aborted = true;
      break;
    }
    OPTSCHED_CHECK_MSG(std::find(point.enabled.begin(), point.enabled.end(), chosen) !=
                           point.enabled.end(),
                       "strategy picked a thread that is not enabled");
    if (point.last_still_enabled && chosen != last &&
        point.last_pending.op != SyncOp::kYield) {
      ++result_.preemptions;
    }
    result_.choices.push_back(chosen);

    ThreadState& thread = threads_[chosen];
    thread.blocked_on = nullptr;
    current_ = chosen;
    thread.fiber->Resume();
    current_ = kNoThread;
    if (thread.fiber->finished()) {
      thread.finished = true;
    }
    last = chosen;
    ++step_;
  }

  // Unwind anything still alive (deadlock, abort, step cap): destructors on
  // fiber stacks run, and their hook calls are ignored (current_ == kNoThread).
  for (ThreadState& thread : threads_) {
    if (!thread.finished) {
      thread.fiber->Abort();
    }
  }
  running_execution_ = false;
  tls_active_scheduler = previous_active;
  runtime::mc_hooks::SetInterposer(previous);
  strategy.OnExecutionDone();
  return std::move(result_);
}

}  // namespace optsched::mc
