#include "src/mc/explorer.h"

#include <algorithm>
#include <limits>

#include "src/base/check.h"

namespace optsched::mc {

namespace {

// One decision point on the DFS stack.
struct Node {
  std::vector<uint32_t> enabled;
  std::vector<ThreadOp> pending;  // parallel to enabled
  // Threads whose exploration from this node is provably redundant: the
  // inherited sleep set plus every choice already fully explored here.
  std::vector<uint32_t> sleep;
  uint32_t chosen = kNoThread;
  uint32_t preemptions_before = 0;
  uint32_t last_running = kNoThread;
  bool last_still_enabled = false;
  ThreadOp last_pending;
};

bool Contains(const std::vector<uint32_t>& v, uint32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// A context switch away from a still-enabled thread at a non-yield point is
// a preemption (CHESS); everything else is free.
uint32_t PreemptionCost(const Node& node, uint32_t choice) {
  return node.last_still_enabled && choice != node.last_running &&
                 node.last_pending.op != SyncOp::kYield
             ? 1
             : 0;
}

const ThreadOp* PendingOf(const Node& node, uint32_t thread) {
  for (size_t i = 0; i < node.enabled.size(); ++i) {
    if (node.enabled[i] == thread) {
      return &node.pending[i];
    }
  }
  return nullptr;
}

// Next unexplored, bound-feasible choice at `node`. Preference order keeps
// the zero-preemption continuation first so bound-b DFS enumerates cheap
// schedules before spending switches: continue the last thread, then the
// lowest-id free switch, then the lowest-id preemption.
uint32_t PickCandidate(const Node& node, uint32_t bound) {
  uint32_t best = kNoThread;
  int best_rank = std::numeric_limits<int>::max();
  for (uint32_t c : node.enabled) {
    if (Contains(node.sleep, c)) {
      continue;
    }
    const uint32_t cost = PreemptionCost(node, c);
    if (node.preemptions_before + cost > bound) {
      continue;
    }
    const int rank = c == node.last_running ? 0 : (cost == 0 ? 1 : 2);
    if (rank < best_rank) {
      best = c;
      best_rank = rank;
    }
  }
  return best;
}

// Stateless DFS over schedules: replays the stack prefix, extends with fresh
// nodes, and between executions backtracks to the deepest node with an
// untried alternative. Sleep sets put a choice to sleep once its subtree is
// done; a child inherits the sleeping threads whose pending op is independent
// of the op just executed, and a node whose every enabled thread is either
// asleep or over the preemption bound aborts the execution (the continuation
// is covered by an equivalent schedule explored elsewhere).
class DfsStrategy : public Strategy {
 public:
  explicit DfsStrategy(uint32_t bound) : bound_(bound) {}

  uint32_t Pick(const SchedulePoint& point) override {
    if (depth_ < stack_.size()) {
      Node& node = stack_[depth_];
      OPTSCHED_CHECK_MSG(node.enabled == point.enabled && Contains(point.enabled, node.chosen),
                         "nondeterministic replay: enabled set changed under fixed choices");
      preemptions_ += PreemptionCost(node, node.chosen);
      ++depth_;
      return node.chosen;
    }

    Node node;
    node.enabled = point.enabled;
    node.pending = point.pending;
    node.last_running = point.last_running;
    node.last_still_enabled = point.last_still_enabled;
    node.last_pending = point.last_pending;
    node.preemptions_before = preemptions_;
    if (!stack_.empty()) {
      const Node& parent = stack_.back();
      const ThreadOp* executed = PendingOf(parent, parent.chosen);
      OPTSCHED_CHECK(executed != nullptr);
      for (uint32_t sleeper : parent.sleep) {
        const ThreadOp* op = PendingOf(node, sleeper);
        if (op != nullptr && CanStaySleeping(*op, *executed)) {
          node.sleep.push_back(sleeper);
        }
      }
    }

    node.chosen = PickCandidate(node, bound_);
    if (node.chosen == kNoThread) {
      pruned_current_ = true;
      return kAbortExecution;
    }
    preemptions_ += PreemptionCost(node, node.chosen);
    stack_.push_back(std::move(node));
    ++depth_;
    return stack_.back().chosen;
  }

  // Moves to the next schedule. False when the bounded space is exhausted.
  bool AdvanceToNext() {
    while (!stack_.empty()) {
      Node& node = stack_.back();
      node.sleep.push_back(node.chosen);
      const uint32_t next = PickCandidate(node, bound_);
      if (next != kNoThread) {
        node.chosen = next;
        BeginExecution();
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  void BeginExecution() {
    depth_ = 0;
    preemptions_ = 0;
    pruned_current_ = false;
  }

  bool pruned_current() const { return pruned_current_; }

 private:
  uint32_t bound_;
  std::vector<Node> stack_;
  size_t depth_ = 0;
  uint32_t preemptions_ = 0;
  bool pruned_current_ = false;
};

}  // namespace

ExploreStats DfsExplorer::Explore(const BodyFactory& make_bodies, const ExecutionSink& sink) {
  ExploreStats stats;
  for (uint32_t bound = 0; bound <= options_.max_preemptions; ++bound) {
    stats.bound_reached = bound;
    DfsStrategy dfs(bound);
    dfs.BeginExecution();
    for (;;) {
      Scheduler scheduler(options_.scheduler);
      const ExecutionResult result = scheduler.Run(make_bodies(), dfs);
      if (result.aborted) {
        ++stats.schedules_pruned;
      } else {
        ++stats.schedules_explored;
        if (result.deadlock) {
          ++stats.deadlocks;
        }
        stats.last_choices = result.choices;
        if (!sink(result, bound)) {
          stats.stopped_by_sink = true;
          return stats;
        }
      }
      if (stats.schedules_explored + stats.schedules_pruned >= options_.max_schedules) {
        stats.budget_exhausted = true;
        return stats;
      }
      if (!dfs.AdvanceToNext()) {
        break;
      }
    }
  }
  return stats;
}

PctStrategy::PctStrategy(uint32_t num_threads, uint32_t depth_estimate,
                         uint32_t num_change_points, uint64_t seed)
    : num_threads_(num_threads),
      depth_estimate_(depth_estimate),
      num_change_points_(num_change_points),
      rng_(seed) {
  Reset();
}

void PctStrategy::Reset() {
  // Initial priorities live above every change-point priority; the k-th
  // change point demotes the running thread to num_change_points - k, so
  // later demotions sink below earlier ones.
  priority_.assign(num_threads_, 0);
  for (uint32_t i = 0; i < num_threads_; ++i) {
    priority_[i] = (rng_.Next() | (1ull << 63));
  }
  change_points_.clear();
  for (uint32_t k = 0; k < num_change_points_; ++k) {
    change_points_.push_back(static_cast<uint32_t>(rng_.NextBelow(
        depth_estimate_ > 1 ? depth_estimate_ : 1)));
  }
  next_low_priority_ = num_change_points_;
}

uint32_t PctStrategy::Pick(const SchedulePoint& point) {
  OPTSCHED_CHECK(!point.enabled.empty());
  auto highest = [&] {
    uint32_t best = point.enabled[0];
    for (uint32_t c : point.enabled) {
      if (priority_[c] > priority_[best]) {
        best = c;
      }
    }
    return best;
  };
  if (std::find(change_points_.begin(), change_points_.end(), point.step) !=
      change_points_.end()) {
    priority_[highest()] = next_low_priority_ > 0 ? --next_low_priority_ : 0;
  }
  return highest();
}

uint32_t DefaultPick(const SchedulePoint& point) {
  if (point.last_still_enabled) {
    return point.last_running;
  }
  return point.enabled.front();
}

uint32_t ReplayStrategy::Pick(const SchedulePoint& point) {
  if (index_ < choices_.size()) {
    const uint32_t wanted = choices_[index_];
    if (std::find(point.enabled.begin(), point.enabled.end(), wanted) != point.enabled.end()) {
      ++index_;
      return wanted;
    }
    diverged_ = true;
    index_ = choices_.size();
  }
  return DefaultPick(point);
}

ExecutionResult ReplayChoices(const BodyFactory& make_bodies,
                              const std::vector<uint32_t>& choices,
                              Scheduler::Options options) {
  ReplayStrategy replay(choices);
  Scheduler scheduler(options);
  return scheduler.Run(make_bodies(), replay);
}

std::vector<uint32_t> MinimizeCounterexample(
    const BodyFactory& make_bodies, const std::vector<uint32_t>& choices,
    const std::function<bool(const ExecutionResult&)>& violates,
    Scheduler::Options options) {
  std::vector<uint32_t> actual;
  auto check = [&](const std::vector<uint32_t>& hints) {
    const ExecutionResult result = ReplayChoices(make_bodies, hints, options);
    if (violates(result)) {
      actual = result.choices;
      return true;
    }
    return false;
  };

  if (!check(choices)) {
    // Not reproducible under replay; hand the caller's sequence back rather
    // than "minimize" something else.
    return choices;
  }

  // Tail truncation: shortest prefix of hints whose default-rule completion
  // still violates. Violation need not be monotone in prefix length, so this
  // is a heuristic first cut; the deletion pass below recovers stragglers.
  std::vector<uint32_t> hints = actual;
  size_t lo = 0;
  size_t hi = hints.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (check(std::vector<uint32_t>(hints.begin(), hints.begin() + mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  hints.resize(hi);

  // Greedy single-choice deletion until a fixed point.
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < hints.size(); ++i) {
      std::vector<uint32_t> candidate = hints;
      candidate.erase(candidate.begin() + i);
      if (check(candidate)) {
        hints = std::move(candidate);
        improved = true;
        break;
      }
    }
  }

  // Final pass pins `actual` to the minimized execution's exact sequence, so
  // the returned schedule replays without divergence.
  OPTSCHED_CHECK(check(hints));
  return actual;
}

}  // namespace optsched::mc
