// Deterministic fault injection at the optimistic protocol's seams.
//
// The paper's claim (§3.2) is resilience by construction: the three-step
// protocol tolerates *transient* failures — stale snapshots, lost re-checks,
// cores that miss balancing rounds — and only *persistent* idleness while
// another core is overloaded violates work conservation. This module makes
// those transient failures first-class and reproducible: a FaultPlan is a
// seeded description of fault rates at each seam, and a FaultInjector turns
// it into per-core deterministic decisions. The same plan can drive the
// model checker (src/verify), the discrete-event simulator (src/sim), the
// round engines (src/core) and the real-thread executor (src/runtime), so a
// perturbation found interesting in one layer can be replayed in the others.
//
// Decision, not mechanism: the injector answers "does fault X hit core c at
// its next protocol invocation?" and counts the hit; the call sites own the
// mechanics (skipping the round, aborting the steal phase, serving an aged
// snapshot, killing the worker thread). This keeps the injector free of
// dependencies on any scheduler layer and — because every lane (core) has
// its own SplitMix64 stream and its own counters — safe to consult from one
// thread per lane without synchronization.

#ifndef OPTSCHED_SRC_FAULT_FAULT_H_
#define OPTSCHED_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"

namespace optsched::fault {

// Probabilities are per protocol invocation: one balancing attempt (or round
// participation) of one core. All zero means "no faults" and every consumer
// behaves exactly as if no injector were attached.
struct FaultPlan {
  // Straggler core: skips its balancing attempt this round (models a core
  // stuck in a long critical section / interrupt storm during the tick).
  double straggler_rate = 0.0;
  // Forced steal-phase abort: the steal behaves as if the re-check lost
  // against a concurrent steal (the paper's legitimate failure), even though
  // no competing steal intervened.
  double steal_abort_rate = 0.0;
  // Selection runs against the previous round's snapshot instead of the
  // current one (artificially aggravated staleness).
  double stale_snapshot_rate = 0.0;
  // The entire periodic balancing round is dropped (lost timer tick).
  double drop_round_rate = 0.0;
  // Worker crash-and-restart (threaded executor only): the worker thread
  // exits at a protocol seam and is respawned after crash_restart_us.
  double crash_rate = 0.0;
  uint64_t crash_restart_us = 200;
  // --- Serving-ingress seams (src/ingress, docs/serving.md) -----------------
  // Mailbox enqueue failure: the producer's TryPush is forced to fail as if
  // the mailbox were full (models a transient allocator/NIC-ring reject).
  // The admission policy then runs its normal full-mailbox fallback, so an
  // injected failure is indistinguishable from real overload downstream —
  // which is the point: it must surface in metrics, not trip the watchdog.
  double mailbox_enqueue_fail_rate = 0.0;
  // Stalled producer: the connection shard sleeps producer_stall_us before
  // offering the item (models a connection handler stuck in a syscall).
  double producer_stall_rate = 0.0;
  uint64_t producer_stall_us = 200;
  // Delayed drain: the owner skips one mailbox-drain opportunity (the items
  // stay admitted-but-undrained one round longer; watchdog must classify the
  // resulting idle-while-pending window as transient).
  double drain_delay_rate = 0.0;
  uint64_t seed = 1;

  // True if any rate is non-zero (consumers skip all hooks otherwise).
  bool any() const {
    return straggler_rate > 0 || steal_abort_rate > 0 || stale_snapshot_rate > 0 ||
           drop_round_rate > 0 || crash_rate > 0 || mailbox_enqueue_fail_rate > 0 ||
           producer_stall_rate > 0 || drain_delay_rate > 0;
  }

  std::string ToString() const;
};

// Cumulative injected-fault counts (what the plan actually did to a run).
struct FaultStats {
  uint64_t stalled_attempts = 0;
  uint64_t injected_aborts = 0;
  uint64_t stale_snapshots = 0;
  uint64_t dropped_rounds = 0;
  uint64_t crashes = 0;
  uint64_t mailbox_enqueue_failures = 0;
  uint64_t producer_stalls = 0;
  uint64_t delayed_drains = 0;

  uint64_t total() const {
    return stalled_attempts + injected_aborts + stale_snapshots + dropped_rounds + crashes +
           mailbox_enqueue_failures + producer_stalls + delayed_drains;
  }
  FaultStats& operator+=(const FaultStats& other);
  std::string ToString() const;
};

class FaultInjector {
 public:
  // `num_lanes` is the number of cores/workers; lane i must only be consulted
  // by the thread acting for core i (single-threaded consumers may use any
  // lane). DropRound draws from a dedicated round lane.
  FaultInjector(const FaultPlan& plan, uint32_t num_lanes);

  const FaultPlan& plan() const { return plan_; }
  uint32_t num_lanes() const { return static_cast<uint32_t>(lanes_.size()); }

  // Each probe draws once from the lane's stream and, when it fires, counts
  // the injection. Deterministic: the sequence of probe results for a lane is
  // a pure function of (plan.seed, lane, probe history).
  bool StallCore(uint32_t lane);       // straggler: skip this balancing attempt
  bool AbortSteal(uint32_t lane);      // force a lost re-check in the steal phase
  bool StaleSnapshot(uint32_t lane);   // select against an aged snapshot
  bool CrashWorker(uint32_t lane);     // fail-stop the worker thread
  bool DropRound();                    // lose the whole periodic round
  // Ingress seams. For the producer-side probes the lane is the connection
  // SHARD (the router sizes its injector by shards, one producer thread per
  // lane); for DelayDrain the lane is the owning WORKER, probed on its own
  // executor-side injector.
  bool FailMailboxEnqueue(uint32_t lane);  // force one TryPush to reject
  bool StallProducer(uint32_t lane);       // sleep the shard before offering
  bool DelayDrain(uint32_t lane);          // skip one mailbox-drain opportunity

  // Sum of all lanes. Quiescence contract (not a lock): call only while no
  // other thread is probing — the executor reads it after joining its
  // workers. There is deliberately no mutex here; serializing the probes
  // would serialize the protocol attempts they are injected into.
  FaultStats stats() const;
  const FaultStats& lane_stats(uint32_t lane) const;

  // Restores the injector to its initial (seeded) state. Same quiescence
  // contract as stats().
  void Reset();

 private:
  // One lane per worker thread, each thread touching only its own lane (the
  // unsynchronized-by-design contract above — there is no lock to annotate,
  // so the discipline lives in the "lane i / thread i" ownership rule).
  // Cache-line alignment keeps the contract cheap as well as correct:
  // without it, adjacent lanes share a line and every probe's RNG advance
  // false-shares with its neighbours' — measurable on the steal path, where
  // each fruitless attempt probes three fault seams.
  struct alignas(64) Lane {
    Rng rng;
    FaultStats stats;
    Lane() : rng(0) {}
  };

  bool Draw(uint32_t lane, double rate, uint64_t FaultStats::* counter);

  FaultPlan plan_;
  std::vector<Lane> lanes_;
  Lane round_lane_;
};

}  // namespace optsched::fault

#endif  // OPTSCHED_SRC_FAULT_FAULT_H_
