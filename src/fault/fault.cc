#include "src/fault/fault.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::fault {

std::string FaultPlan::ToString() const {
  return StrFormat(
      "plan{straggler=%.2f abort=%.2f stale=%.2f drop=%.2f crash=%.2f restart=%lluus "
      "enqfail=%.2f pstall=%.2f/%lluus ddelay=%.2f seed=%llu}",
      straggler_rate, steal_abort_rate, stale_snapshot_rate, drop_round_rate, crash_rate,
      static_cast<unsigned long long>(crash_restart_us), mailbox_enqueue_fail_rate,
      producer_stall_rate, static_cast<unsigned long long>(producer_stall_us), drain_delay_rate,
      static_cast<unsigned long long>(seed));
}

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  stalled_attempts += other.stalled_attempts;
  injected_aborts += other.injected_aborts;
  stale_snapshots += other.stale_snapshots;
  dropped_rounds += other.dropped_rounds;
  crashes += other.crashes;
  mailbox_enqueue_failures += other.mailbox_enqueue_failures;
  producer_stalls += other.producer_stalls;
  delayed_drains += other.delayed_drains;
  return *this;
}

std::string FaultStats::ToString() const {
  return StrFormat(
      "faults{stalled=%llu aborts=%llu stale=%llu dropped=%llu crashes=%llu "
      "enqfail=%llu pstall=%llu ddelay=%llu}",
      static_cast<unsigned long long>(stalled_attempts),
      static_cast<unsigned long long>(injected_aborts),
      static_cast<unsigned long long>(stale_snapshots),
      static_cast<unsigned long long>(dropped_rounds), static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(mailbox_enqueue_failures),
      static_cast<unsigned long long>(producer_stalls),
      static_cast<unsigned long long>(delayed_drains));
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint32_t num_lanes) : plan_(plan) {
  OPTSCHED_CHECK(num_lanes > 0);
  OPTSCHED_CHECK(plan.straggler_rate >= 0 && plan.straggler_rate <= 1);
  OPTSCHED_CHECK(plan.steal_abort_rate >= 0 && plan.steal_abort_rate <= 1);
  OPTSCHED_CHECK(plan.stale_snapshot_rate >= 0 && plan.stale_snapshot_rate <= 1);
  OPTSCHED_CHECK(plan.drop_round_rate >= 0 && plan.drop_round_rate <= 1);
  OPTSCHED_CHECK(plan.crash_rate >= 0 && plan.crash_rate <= 1);
  OPTSCHED_CHECK(plan.mailbox_enqueue_fail_rate >= 0 && plan.mailbox_enqueue_fail_rate <= 1);
  OPTSCHED_CHECK(plan.producer_stall_rate >= 0 && plan.producer_stall_rate <= 1);
  OPTSCHED_CHECK(plan.drain_delay_rate >= 0 && plan.drain_delay_rate <= 1);
  lanes_.resize(num_lanes);
  Reset();
}

void FaultInjector::Reset() {
  for (uint32_t lane = 0; lane < lanes_.size(); ++lane) {
    lanes_[lane].rng = Rng(plan_.seed * 0x9e3779b97f4a7c15ull + lane + 1);
    lanes_[lane].stats = FaultStats{};
  }
  round_lane_.rng = Rng(plan_.seed * 0x9e3779b97f4a7c15ull);
  round_lane_.stats = FaultStats{};
}

bool FaultInjector::Draw(uint32_t lane, double rate, uint64_t FaultStats::* counter) {
  OPTSCHED_CHECK(lane < lanes_.size());
  if (rate <= 0.0) {
    return false;
  }
  Lane& l = lanes_[lane];
  if (!l.rng.NextBool(rate)) {
    return false;
  }
  ++(l.stats.*counter);
  return true;
}

bool FaultInjector::StallCore(uint32_t lane) {
  return Draw(lane, plan_.straggler_rate, &FaultStats::stalled_attempts);
}

bool FaultInjector::AbortSteal(uint32_t lane) {
  return Draw(lane, plan_.steal_abort_rate, &FaultStats::injected_aborts);
}

bool FaultInjector::StaleSnapshot(uint32_t lane) {
  return Draw(lane, plan_.stale_snapshot_rate, &FaultStats::stale_snapshots);
}

bool FaultInjector::CrashWorker(uint32_t lane) {
  return Draw(lane, plan_.crash_rate, &FaultStats::crashes);
}

bool FaultInjector::FailMailboxEnqueue(uint32_t lane) {
  return Draw(lane, plan_.mailbox_enqueue_fail_rate, &FaultStats::mailbox_enqueue_failures);
}

bool FaultInjector::StallProducer(uint32_t lane) {
  return Draw(lane, plan_.producer_stall_rate, &FaultStats::producer_stalls);
}

bool FaultInjector::DelayDrain(uint32_t lane) {
  return Draw(lane, plan_.drain_delay_rate, &FaultStats::delayed_drains);
}

bool FaultInjector::DropRound() {
  if (plan_.drop_round_rate <= 0.0) {
    return false;
  }
  if (!round_lane_.rng.NextBool(plan_.drop_round_rate)) {
    return false;
  }
  ++round_lane_.stats.dropped_rounds;
  return true;
}

FaultStats FaultInjector::stats() const {
  FaultStats total = round_lane_.stats;
  for (const Lane& lane : lanes_) {
    total += lane.stats;
  }
  return total;
}

const FaultStats& FaultInjector::lane_stats(uint32_t lane) const {
  OPTSCHED_CHECK(lane < lanes_.size());
  return lanes_[lane].stats;
}

}  // namespace optsched::fault
