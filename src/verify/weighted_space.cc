#include "src/verify/weighted_space.h"

#include "src/base/check.h"
#include "src/base/str.h"
#include "src/core/balancer.h"

namespace optsched::verify {

namespace {

using CoreWeights = std::vector<uint32_t>;  // non-decreasing multiset

// All multisets of size 0..max_size over the alphabet, non-decreasing.
void EnumerateMultisets(const std::vector<uint32_t>& alphabet, uint32_t max_size,
                        CoreWeights& current, size_t min_index,
                        std::vector<CoreWeights>& out) {
  out.push_back(current);
  if (current.size() == max_size) {
    return;
  }
  for (size_t i = min_index; i < alphabet.size(); ++i) {
    current.push_back(alphabet[i]);
    EnumerateMultisets(alphabet, max_size, current, i, out);
    current.pop_back();
  }
}

MachineState BuildMachine(const std::vector<const CoreWeights*>& per_core) {
  MachineState machine(static_cast<uint32_t>(per_core.size()));
  TaskId next = 1;
  for (CpuId cpu = 0; cpu < per_core.size(); ++cpu) {
    for (uint32_t weight : *per_core[cpu]) {
      Task task;
      task.id = next++;
      task.weight = weight;
      machine.Place(std::move(task), cpu);
    }
  }
  machine.ScheduleAll();
  return machine;
}

bool EnumerateMachines(const WeightedBounds& bounds,
                       const std::vector<CoreWeights>& multisets,
                       std::vector<const CoreWeights*>& per_core, uint32_t index,
                       uint64_t& visited,
                       const std::function<bool(const MachineState&)>& visit) {
  if (index == bounds.num_cores) {
    ++visited;
    return visit(BuildMachine(per_core));
  }
  for (const CoreWeights& multiset : multisets) {
    per_core[index] = &multiset;
    if (!EnumerateMachines(bounds, multisets, per_core, index + 1, visited, visit)) {
      return false;
    }
  }
  return true;
}

std::string DescribeMachine(const MachineState& machine) {
  std::string out;
  for (CpuId cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    if (cpu > 0) {
      out += " | ";
    }
    out += StrFormat("cpu%u:", cpu);
    if (machine.core(cpu).current().has_value()) {
      out += StrFormat(" [%u]", machine.core(cpu).current()->weight);
    }
    for (const Task& t : machine.core(cpu).ready()) {
      out += StrFormat(" %u", t.weight);
    }
  }
  return out;
}

}  // namespace

uint64_t ForEachWeightedState(const WeightedBounds& bounds,
                              const std::function<bool(const MachineState&)>& visit) {
  OPTSCHED_CHECK(bounds.num_cores > 0);
  OPTSCHED_CHECK(!bounds.weights.empty());
  for (uint32_t w : bounds.weights) {
    OPTSCHED_CHECK_MSG(w > 0, "task weights must be positive");
  }
  std::vector<CoreWeights> multisets;
  CoreWeights scratch;
  EnumerateMultisets(bounds.weights, bounds.max_tasks_per_core, scratch, 0, multisets);
  std::vector<const CoreWeights*> per_core(bounds.num_cores, nullptr);
  uint64_t visited = 0;
  EnumerateMachines(bounds, multisets, per_core, 0, visited, visit);
  return visited;
}

uint64_t CountWeightedStates(const WeightedBounds& bounds) {
  return ForEachWeightedState(bounds, [](const MachineState&) { return true; });
}

CheckResult CheckWeightedLemma1(const BalancePolicy& policy, const WeightedBounds& bounds,
                                const Topology* topology) {
  CheckResult result;
  result.property = "weighted-lemma1(idle thief targets overloaded cores, and only them)";
  result.holds = true;
  result.states_checked = ForEachWeightedState(bounds, [&](const MachineState& machine) {
    const LoadSnapshot snapshot = machine.Snapshot();
    bool any_overloaded = false;
    for (CpuId cpu = 0; cpu < machine.num_cpus(); ++cpu) {
      any_overloaded |= machine.IsOverloaded(cpu);
    }
    for (CpuId thief = 0; thief < machine.num_cpus(); ++thief) {
      if (!machine.IsIdle(thief)) {
        continue;
      }
      ++result.checks_performed;
      const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
      const std::vector<CpuId> candidates = policy.FilterCandidates(view);
      if (any_overloaded && candidates.empty()) {
        result.holds = false;
        result.counterexample = Counterexample{
            .loads = machine.Loads(LoadMetric::kWeightedLoad),
            .thief = thief,
            .stealee = std::nullopt,
            .steal_order = {},
            .note = "overloaded core exists but idle thief's filter is empty: " +
                    DescribeMachine(machine)};
        return false;
      }
      for (CpuId c : candidates) {
        if (!machine.IsOverloaded(c)) {
          result.holds = false;
          result.counterexample =
              Counterexample{.loads = machine.Loads(LoadMetric::kWeightedLoad),
                             .thief = thief,
                             .stealee = c,
                             .steal_order = {},
                             .note = "filter admits a non-overloaded core: " +
                                     DescribeMachine(machine)};
          return false;
        }
      }
    }
    return true;
  });
  return result;
}

CheckResult CheckWeightedStealSafety(const BalancePolicy& policy, const WeightedBounds& bounds,
                                     const Topology* topology) {
  CheckResult result;
  result.property =
      "weighted-steal-safety(victim never idled, weight conserved, idle thief succeeds)";
  result.holds = true;
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  result.states_checked = ForEachWeightedState(bounds, [&](const MachineState& machine) {
    for (CpuId thief = 0; thief < machine.num_cpus(); ++thief) {
      for (CpuId victim = 0; victim < machine.num_cpus(); ++victim) {
        if (victim == thief) {
          continue;
        }
        MachineState working = machine;
        const LoadSnapshot snapshot = working.Snapshot();
        const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
        if (!policy.CanSteal(view, victim)) {
          continue;
        }
        ++result.checks_performed;
        LoadBalancer balancer(alias, topology);
        const int64_t weight_before = working.TotalWeight();
        const CoreAction action = balancer.ExecuteStealPhase(working, thief, victim);
        auto fail = [&](const std::string& note) {
          result.holds = false;
          result.counterexample =
              Counterexample{.loads = machine.Loads(LoadMetric::kWeightedLoad),
                             .thief = thief,
                             .stealee = victim,
                             .steal_order = {},
                             .note = note + ": " + DescribeMachine(machine)};
        };
        if (working.TotalWeight() != weight_before) {
          fail("steal changed total weight");
          return false;
        }
        if (action.outcome == StealOutcome::kStole && working.IsIdle(victim)) {
          fail("victim idled by the steal");
          return false;
        }
        if (action.outcome != StealOutcome::kStole && machine.IsIdle(thief)) {
          fail("idle thief's admitted steal failed without concurrency");
          return false;
        }
      }
    }
    return true;
  });
  return result;
}

CheckResult CheckWeightedPotentialDecrease(const BalancePolicy& policy,
                                           const WeightedBounds& bounds,
                                           const Topology* topology) {
  CheckResult result;
  result.property = "weighted-potential-decrease(successful steals strictly decrease d)";
  result.holds = true;
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  const LoadMetric metric = policy.metric();
  result.states_checked = ForEachWeightedState(bounds, [&](const MachineState& machine) {
    for (CpuId thief = 0; thief < machine.num_cpus(); ++thief) {
      for (CpuId victim = 0; victim < machine.num_cpus(); ++victim) {
        if (victim == thief) {
          continue;
        }
        MachineState working = machine;
        const LoadSnapshot snapshot = working.Snapshot();
        const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
        if (!policy.CanSteal(view, victim)) {
          continue;
        }
        ++result.checks_performed;
        const int64_t d_before = working.Potential(metric);
        LoadBalancer balancer(alias, topology);
        const CoreAction action = balancer.ExecuteStealPhase(working, thief, victim);
        if (action.outcome == StealOutcome::kStole &&
            working.Potential(metric) >= d_before) {
          result.holds = false;
          result.counterexample =
              Counterexample{.loads = machine.Loads(LoadMetric::kWeightedLoad),
                             .thief = thief,
                             .stealee = victim,
                             .steal_order = {},
                             .note = "steal did not strictly decrease weighted d: " +
                                     DescribeMachine(machine)};
          return false;
        }
      }
    }
    return true;
  });
  return result;
}

}  // namespace optsched::verify
