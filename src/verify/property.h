// Property-check result types shared by all verifier passes.

#ifndef OPTSCHED_SRC_VERIFY_PROPERTY_H_
#define OPTSCHED_SRC_VERIFY_PROPERTY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/topology/topology.h"

namespace optsched::verify {

// A concrete refutation of a property: the machine state (as a load vector)
// and, where applicable, the acting cores and the adversarial steal order
// that exhibit the violation.
struct Counterexample {
  std::vector<int64_t> loads;
  std::optional<CpuId> thief;
  std::optional<CpuId> stealee;
  std::vector<uint32_t> steal_order;  // empty unless an order was involved
  std::string note;

  std::string ToString() const;
};

struct CheckResult {
  std::string property;
  bool holds = false;
  uint64_t states_checked = 0;
  uint64_t checks_performed = 0;  // individual obligations (state x pair x order)
  std::optional<Counterexample> counterexample;

  std::string ToString() const;
};

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_PROPERTY_H_
