// Property-check result types shared by all verifier passes.

#ifndef OPTSCHED_SRC_VERIFY_PROPERTY_H_
#define OPTSCHED_SRC_VERIFY_PROPERTY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/topology/topology.h"

namespace optsched::verify {

// A concrete refutation of a property: the machine state (as a load vector)
// and, where applicable, the acting cores and the adversarial steal order
// that exhibit the violation.
struct Counterexample {
  std::vector<int64_t> loads;
  std::optional<CpuId> thief;
  std::optional<CpuId> stealee;
  std::vector<uint32_t> steal_order;  // empty unless an order was involved
  std::string note;

  std::string ToString() const;
};

struct CheckResult {
  std::string property;
  bool holds = false;
  uint64_t states_checked = 0;
  uint64_t checks_performed = 0;  // individual obligations (state x pair x order)
  std::optional<Counterexample> counterexample;

  std::string ToString() const;
};

// True if renaming cores is a symmetry of the machine description: one NUMA
// node, one package, no SMT pairing. On any other topology a distance- or
// group-aware policy distinguishes cores, so quotienting states by sorting
// (Bounds::sorted_only) would merge states the policy treats differently.
bool TopologyIsCoreSymmetric(const Topology& topology);

// Guard for the sorted_only symmetry reduction. Returns a failed CheckResult
// (holds = false, note explains the rejection) when the reduction was
// requested together with a topology that is not core-symmetric; nullopt
// when the combination is sound. Every verifier pass that honours
// sorted_only must call this before sweeping, so an unsound configuration
// is reported as a refused check instead of a silently wrong verdict.
std::optional<CheckResult> RejectUnsoundSymmetry(const std::string& property, bool sorted_only,
                                                 const Topology* topology);

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_PROPERTY_H_
