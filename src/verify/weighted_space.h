// Weighted machine-state enumeration and the §4.2/§4.3 obligations over it.
//
// The load-vector state space (state_space.h) models anonymous equal-weight
// tasks — complete for count-metric policies, but too coarse for policies
// that balance "the number of threads weighted by their importance" (§3.1):
// their behaviour depends on *which* weights sit in each runqueue. This
// module enumerates machines where every core holds a multiset of task
// weights drawn from a small alphabet, and re-discharges the paper's
// obligations there:
//
//   * Lemma 1 (weighted): an idle thief's filter set is non-empty whenever
//     an overloaded core exists, and only overloaded cores pass the filter;
//   * steal safety: admitted steals by idle thieves succeed, never idle the
//     victim, and never lose weight;
//   * potential decrease: every successful steal strictly decreases the
//     weighted potential d.
//
// Weight multisets grow combinatorially, so bounds are tighter than the
// count-space ones; every weighted-policy subtlety we know of (e.g. "no task
// light enough to move" failures) already appears with 3 cores, 2 tasks per
// core and 3 distinct weights.

#ifndef OPTSCHED_SRC_VERIFY_WEIGHTED_SPACE_H_
#define OPTSCHED_SRC_VERIFY_WEIGHTED_SPACE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/policy.h"
#include "src/sched/machine_state.h"
#include "src/verify/property.h"

namespace optsched::verify {

struct WeightedBounds {
  uint32_t num_cores = 3;
  uint32_t max_tasks_per_core = 2;
  // The weight alphabet. Values need not be realistic niceness weights —
  // the obligations are scale-free — but they must be positive.
  std::vector<uint32_t> weights = {1, 2, 3};
};

// Invokes `visit` for every machine within bounds (each core holds a
// non-decreasing multiset over the alphabet). Returns states visited;
// `visit` returns false to stop early.
uint64_t ForEachWeightedState(const WeightedBounds& bounds,
                              const std::function<bool(const MachineState&)>& visit);

// Number of states ForEachWeightedState would visit.
uint64_t CountWeightedStates(const WeightedBounds& bounds);

CheckResult CheckWeightedLemma1(const BalancePolicy& policy, const WeightedBounds& bounds,
                                const Topology* topology = nullptr);
CheckResult CheckWeightedStealSafety(const BalancePolicy& policy, const WeightedBounds& bounds,
                                     const Topology* topology = nullptr);
CheckResult CheckWeightedPotentialDecrease(const BalancePolicy& policy,
                                           const WeightedBounds& bounds,
                                           const Topology* topology = nullptr);

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_WEIGHTED_SPACE_H_
