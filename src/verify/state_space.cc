#include "src/verify/state_space.h"

#include "src/base/check.h"

namespace optsched::verify {

namespace {

// Depth-first enumeration of load vectors. Prunes on total_load and on the
// sorted_only constraint as it goes, so the visited count equals the logical
// state count.
bool Enumerate(const Bounds& bounds, std::vector<int64_t>& loads, uint32_t index,
               int64_t running_total, uint64_t& visited,
               const std::function<bool(const std::vector<int64_t>&)>& visit) {
  if (index == bounds.num_cores) {
    if (bounds.total_load >= 0 && running_total != bounds.total_load) {
      return true;
    }
    ++visited;
    return visit(loads);
  }
  const int64_t lo = bounds.sorted_only && index > 0 ? loads[index - 1] : 0;
  for (int64_t value = lo; value <= bounds.max_load; ++value) {
    if (bounds.total_load >= 0 && running_total + value > bounds.total_load) {
      break;
    }
    loads[index] = value;
    if (!Enumerate(bounds, loads, index + 1, running_total + value, visited, visit)) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t ForEachState(const Bounds& bounds,
                      const std::function<bool(const std::vector<int64_t>&)>& visit) {
  OPTSCHED_CHECK(bounds.num_cores > 0);
  OPTSCHED_CHECK(bounds.max_load >= 0);
  std::vector<int64_t> loads(bounds.num_cores, 0);
  uint64_t visited = 0;
  Enumerate(bounds, loads, 0, 0, visited, visit);
  return visited;
}

uint64_t CountStates(const Bounds& bounds) {
  return ForEachState(bounds, [](const std::vector<int64_t>&) { return true; });
}

}  // namespace optsched::verify
