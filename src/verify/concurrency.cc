#include "src/verify/concurrency.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "src/base/check.h"
#include "src/base/str.h"
#include "src/core/balancer.h"
#include "src/sched/machine_state.h"

namespace optsched::verify {

namespace {

uint64_t Factorial(uint32_t n) {
  uint64_t f = 1;
  for (uint32_t i = 2; i <= n; ++i) {
    f *= i;
  }
  return f;
}

// Calls `body` with each steal order (all permutations, or `max_orders`
// random samples when n! exceeds it). body returns false to stop.
void ForEachOrder(uint32_t n, uint64_t max_orders, uint64_t seed,
                  const std::function<bool(const std::vector<uint32_t>&)>& body) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (Factorial(n) <= max_orders) {
    do {
      if (!body(perm)) {
        return;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  } else {
    Rng rng(seed);
    for (uint64_t i = 0; i < max_orders; ++i) {
      rng.Shuffle(perm);
      if (!body(perm)) {
        return;
      }
    }
  }
}

}  // namespace

CheckResult CheckFailureCausality(const BalancePolicy& policy,
                                  const ConvergenceCheckOptions& options,
                                  const Topology* topology) {
  CheckResult result;
  result.property = "failure-causality(every failed steal implicates a prior success)";
  if (auto rejected =
          RejectUnsoundSymmetry(result.property, options.bounds.sorted_only, topology)) {
    return *rejected;
  }
  result.holds = true;
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  result.states_checked = ForEachState(options.bounds, [&](const std::vector<int64_t>& loads) {
    bool keep_going = true;
    ForEachOrder(options.bounds.num_cores, options.max_orders_per_state, options.seed,
                 [&](const std::vector<uint32_t>& order) {
      ++result.checks_performed;
      MachineState machine = MachineState::FromLoads(loads);
      LoadBalancer balancer(alias, topology);
      Rng rng(options.seed);
      RoundOptions ropts;
      ropts.mode = RoundOptions::Mode::kConcurrentFixedOrder;
      ropts.steal_order = order;
      const RoundResult rr = balancer.RunRound(machine, rng, ropts);
      uint32_t successes_so_far = 0;
      for (uint32_t cpu : rr.executed_order) {
        const CoreAction& action = rr.actions[cpu];
        if (action.outcome == StealOutcome::kStole) {
          ++successes_so_far;
        } else if (action.outcome == StealOutcome::kFailedRecheck && successes_so_far == 0) {
          result.holds = false;
          result.counterexample =
              Counterexample{.loads = loads,
                             .thief = cpu,
                             .stealee = action.victim,
                             .steal_order = order,
                             .note = "re-check failed with no earlier successful steal in the "
                                     "round (selection phase must have written state)"};
          keep_going = false;
          return false;
        }
      }
      return true;
    });
    return keep_going;
  });
  return result;
}

CheckResult CheckBoundedSteals(const BalancePolicy& policy,
                               const ConvergenceCheckOptions& options,
                               const Topology* topology) {
  CheckResult result;
  result.property = "bounded-steals(total successful steals <= d0/2 on every adversarial run)";
  if (auto rejected =
          RejectUnsoundSymmetry(result.property, options.bounds.sorted_only, topology)) {
    return *rejected;
  }
  result.holds = true;
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  const LoadMetric metric = policy.metric();
  result.states_checked = ForEachState(options.bounds, [&](const std::vector<int64_t>& loads) {
    // A handful of adversarial runs per state: the potential argument is
    // order-independent, so any run exceeding the bound refutes it.
    for (uint64_t sample = 0; sample < 8; ++sample) {
      ++result.checks_performed;
      MachineState machine = MachineState::FromLoads(loads);
      const int64_t d0 = machine.Potential(metric);
      const uint64_t bound = static_cast<uint64_t>(d0) / 2;
      LoadBalancer balancer(alias, topology);
      Rng rng(options.seed + sample);
      RoundOptions ropts;
      ropts.mode = RoundOptions::Mode::kConcurrentRandomOrder;
      uint64_t successes = 0;
      for (uint64_t round = 0; round < options.max_rounds; ++round) {
        const RoundResult rr = balancer.RunRound(machine, rng, ropts);
        successes += rr.successes;
        if (successes > bound) {
          result.holds = false;
          result.counterexample = Counterexample{
              .loads = loads,
              .thief = std::nullopt,
              .stealee = std::nullopt,
              .steal_order = {},
              .note = StrFormat("successful steals (%llu) exceeded d0/2 (%llu): potential is "
                                "not a ranking function for this policy",
                                static_cast<unsigned long long>(successes),
                                static_cast<unsigned long long>(bound))};
          return false;
        }
        if (rr.successes == 0) {
          break;  // quiescent
        }
      }
    }
    return true;
  });
  return result;
}

}  // namespace optsched::verify
