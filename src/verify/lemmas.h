// Per-state proof obligations (paper §4.2, "Simple context - No concurrency").
//
// These are the C++ analogs of the Leon lemmas:
//
//  * Lemma 1 (Listing 2): for every state and every *idle* thief,
//      (exists overloaded core  ==>  the thief's filter set is non-empty) AND
//      (every filtered core is overloaded).
//    "an idle core wants to steal from overloaded cores (and only them)".
//
//  * FilterSelectsOverloaded: the second conjunct for arbitrary (also
//    non-idle) thieves — the filter never targets a non-overloaded core.
//
//  * StealSafety: "during the stealing phase, the idle core actually steals
//    threads from an overloaded core, and does not steal too much from that
//    overloaded core (i.e. ... the overloaded core should not end up idle)".
//    Checked against the real engine (LoadBalancer::ExecuteStealPhase), for
//    every (state, thief, victim) pair the filter admits: the steal succeeds
//    when the thief is idle, the victim never ends up idle, and no task is
//    lost or duplicated.
//
//  * PotentialDecrease (§4.3): every successful steal strictly decreases
//      d(c1..cn) = sum_i sum_j |load_i - load_j|
//    — the ranking function that bounds the number of successful steals.
//
// Each check enumerates every machine state within the given bounds and
// returns the first concrete counterexample on failure.

#ifndef OPTSCHED_SRC_VERIFY_LEMMAS_H_
#define OPTSCHED_SRC_VERIFY_LEMMAS_H_

#include "src/core/policy.h"
#include "src/topology/topology.h"
#include "src/verify/property.h"
#include "src/verify/state_space.h"

namespace optsched::verify {

CheckResult CheckLemma1(const BalancePolicy& policy, const Bounds& bounds,
                        const Topology* topology = nullptr);

CheckResult CheckFilterSelectsOverloaded(const BalancePolicy& policy, const Bounds& bounds,
                                         const Topology* topology = nullptr);

CheckResult CheckStealSafety(const BalancePolicy& policy, const Bounds& bounds,
                             const Topology* topology = nullptr);

CheckResult CheckPotentialDecrease(const BalancePolicy& policy, const Bounds& bounds,
                                   const Topology* topology = nullptr);

// Re-runs `check` over slices of increasing total load so the returned
// counterexample (if any) has the minimum possible number of tasks — the
// most readable refutation for a policy author. `check` is any of the
// per-state obligations above. Slightly slower than a direct check (it
// revisits small totals) but still bounded by one full sweep.
using StateCheck = CheckResult (*)(const BalancePolicy&, const Bounds&, const Topology*);
CheckResult CheckWithMinimalCounterexample(StateCheck check, const BalancePolicy& policy,
                                           const Bounds& bounds,
                                           const Topology* topology = nullptr);

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_LEMMAS_H_
