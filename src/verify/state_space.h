// Bounded machine-state enumeration.
//
// The Leon substitution (DESIGN.md): the paper's lemmas are universally
// quantified over core-state vectors, but for integer-load models they only
// depend on the per-core load values. That makes them finitely refutable —
// enumerating every load vector within a bound exercises exactly the same
// proof obligations Leon discharges symbolically, and produces concrete
// counterexamples when an obligation fails (e.g. the §4.3 broken filter or
// the group-sum hierarchical filter).

#ifndef OPTSCHED_SRC_VERIFY_STATE_SPACE_H_
#define OPTSCHED_SRC_VERIFY_STATE_SPACE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace optsched::verify {

// Bounds of the exhaustive sweep. The default (4 cores, loads 0..5) covers
// every scenario the paper discusses, including the 3-core ping-pong example,
// in well under a second.
struct Bounds {
  uint32_t num_cores = 4;
  int64_t max_load = 5;
  // If >= 0, restrict enumeration to states whose loads sum to exactly this
  // (useful for sweeping the reachable set of a fixed workload).
  int64_t total_load = -1;
  // Symmetry reduction: visit only non-decreasing load vectors. Sound only
  // for core-symmetric policies (no groups / topology), where predicates are
  // invariant under core renaming. Default off.
  bool sorted_only = false;
};

// Invokes `visit` for every load vector within `bounds`. `visit` returns
// false to abort the sweep early (e.g. after the first counterexample).
// Returns the number of states visited.
uint64_t ForEachState(const Bounds& bounds,
                      const std::function<bool(const std::vector<int64_t>&)>& visit);

// Number of states ForEachState would visit (no callback).
uint64_t CountStates(const Bounds& bounds);

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_STATE_SPACE_H_
