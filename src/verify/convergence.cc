#include "src/verify/convergence.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <set>

#include "src/base/check.h"
#include "src/base/str.h"
#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/sched/machine_state.h"

namespace optsched::verify {

namespace {

using LoadVector = std::vector<int64_t>;

bool IsWorkConserved(const LoadVector& loads) {
  bool any_idle = false;
  bool any_overloaded = false;
  for (int64_t l : loads) {
    any_idle |= (l == 0);
    any_overloaded |= (l >= 2);
  }
  return !(any_idle && any_overloaded);
}

std::string CycleNote(const std::vector<LoadVector>& cycle) {
  std::string note = "adversarial livelock cycle: ";
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) {
      note += " -> ";
    }
    note += "(";
    for (size_t j = 0; j < cycle[i].size(); ++j) {
      if (j > 0) {
        note += ",";
      }
      note += StrFormat("%lld", static_cast<long long>(cycle[i][j]));
    }
    note += ")";
  }
  return note;
}

uint64_t Factorial(uint32_t n) {
  uint64_t f = 1;
  for (uint32_t i = 2; i <= n; ++i) {
    f *= i;
  }
  return f;
}

// All (or sampled) steal-order permutations for n cores.
std::vector<std::vector<uint32_t>> MakeOrders(uint32_t n, uint64_t max_orders, uint64_t seed,
                                              bool* sampled) {
  std::vector<std::vector<uint32_t>> orders;
  *sampled = Factorial(n) > max_orders;
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (!*sampled) {
    do {
      orders.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  } else {
    Rng rng(seed);
    for (uint64_t i = 0; i < max_orders; ++i) {
      rng.Shuffle(perm);
      orders.push_back(perm);
    }
  }
  return orders;
}

// One concurrent round from `loads` in the given order; returns the next
// load vector. Deterministic given (loads, order, seed).
LoadVector Step(LoadBalancer& balancer, const LoadVector& loads,
                const std::vector<uint32_t>& order, uint64_t seed) {
  MachineState machine = MachineState::FromLoads(loads);
  Rng rng(seed);
  RoundOptions options;
  options.mode = RoundOptions::Mode::kConcurrentFixedOrder;
  options.steal_order = order;
  balancer.RunRound(machine, rng, options);
  return machine.Loads(LoadMetric::kTaskCount);
}

}  // namespace

ConvergenceCheckResult CheckSequentialConvergence(const BalancePolicy& policy,
                                                  const ConvergenceCheckOptions& options,
                                                  const Topology* topology) {
  ConvergenceCheckResult out;
  out.result.property = options.fault_plan.any()
                            ? "sequential-convergence(work conservation, seeded fault injection)"
                            : "sequential-convergence(work conservation, no concurrency)";
  out.result.holds = true;
  if (auto rejected = RejectUnsoundSymmetry(
          out.result.property, options.symmetry_reduction || options.bounds.sorted_only,
          topology)) {
    out.result = *rejected;
    return out;
  }
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  out.result.states_checked = ForEachState(options.bounds, [&](const LoadVector& loads) {
    ++out.result.checks_performed;
    MachineState machine = MachineState::FromLoads(loads);
    LoadBalancer balancer(alias, topology);
    // One injector per start state (fresh lane streams) keeps every start
    // state's verdict independently reproducible from the plan's seed.
    std::unique_ptr<fault::FaultInjector> injector;
    if (options.fault_plan.any()) {
      injector = std::make_unique<fault::FaultInjector>(options.fault_plan,
                                                        static_cast<uint32_t>(loads.size()));
      balancer.set_fault_injector(injector.get());
    }
    Rng rng(options.seed);
    ConvergenceOptions copts;
    copts.round.mode = RoundOptions::Mode::kSequential;
    copts.max_rounds = options.max_rounds;
    const ConvergenceResult cr = RunUntilWorkConserved(balancer, machine, rng, copts);
    if (!cr.converged) {
      out.result.holds = false;
      out.result.counterexample = Counterexample{
          .loads = loads,
          .thief = std::nullopt,
          .stealee = std::nullopt,
          .steal_order = {},
          .note = "sequential rounds did not reach a work-conserved state within budget"};
      return false;
    }
    out.worst_case_rounds = std::max(out.worst_case_rounds, cr.rounds);
    return true;
  });
  return out;
}

ConvergenceCheckResult CheckConcurrentConvergence(const BalancePolicy& policy,
                                                  const ConvergenceCheckOptions& options,
                                                  const Topology* topology) {
  ConvergenceCheckResult out;
  out.result.property = "concurrent-convergence(AF work-conserved, adversarial steal order)";
  if (auto rejected = RejectUnsoundSymmetry(
          out.result.property, options.symmetry_reduction || options.bounds.sorted_only,
          topology)) {
    out.result = *rejected;
    return out;
  }
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  LoadBalancer balancer(alias, topology);

  bool sampled = false;
  const std::vector<std::vector<uint32_t>> orders =
      MakeOrders(options.bounds.num_cores, options.max_orders_per_state, options.seed, &sampled);
  out.orders_sampled = sampled;

  // --- Build the round-transition graph over the reachable state space. ----
  // With symmetry reduction, graph nodes are canonical (sorted) load vectors;
  // each canonical node's outgoing edges are computed from the sorted
  // representative, which is sound for core-symmetric policies.
  const auto canonical = [&](LoadVector state) {
    if (options.symmetry_reduction) {
      std::sort(state.begin(), state.end());
    }
    return state;
  };
  std::map<LoadVector, std::set<LoadVector>> successors;
  std::vector<LoadVector> frontier;
  const auto discover = [&](const LoadVector& state) {
    if (successors.emplace(state, std::set<LoadVector>{}).second) {
      frontier.push_back(state);
    }
  };
  Bounds initial_bounds = options.bounds;
  initial_bounds.sorted_only = options.symmetry_reduction || initial_bounds.sorted_only;
  out.result.states_checked = ForEachState(initial_bounds, [&](const LoadVector& loads) {
    discover(canonical(loads));
    return true;
  });
  bool truncated = false;
  while (!frontier.empty()) {
    if (successors.size() > options.max_graph_states) {
      truncated = true;
      break;
    }
    const LoadVector state = frontier.back();
    frontier.pop_back();
    std::set<LoadVector>& succ = successors[state];
    for (const auto& order : orders) {
      ++out.result.checks_performed;
      LoadVector next = canonical(Step(balancer, state, order, options.seed));
      succ.insert(next);
      discover(next);
    }
  }
  out.graph_states = successors.size();
  if (truncated) {
    out.result.holds = false;
    out.result.counterexample =
        Counterexample{.loads = {},
                       .thief = std::nullopt,
                       .stealee = std::nullopt,
                       .steal_order = {},
                       .note = "state-graph budget exhausted; raise max_graph_states"};
    return out;
  }

  // --- AF(work-conserved): backward fixpoint. -------------------------------
  std::map<LoadVector, bool> good;
  for (const auto& [state, succ] : successors) {
    good[state] = IsWorkConserved(state);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [state, succ] : successors) {
      if (good[state]) {
        continue;
      }
      bool all_good = true;
      for (const LoadVector& next : succ) {
        if (!good[next]) {
          all_good = false;
          break;
        }
      }
      if (all_good && !succ.empty()) {
        good[state] = true;
        changed = true;
      }
    }
  }

  // --- Verdict + N / livelock cycle extraction. -----------------------------
  const auto bad_it = std::find_if(good.begin(), good.end(),
                                   [](const auto& kv) { return !kv.second; });
  if (bad_it != good.end()) {
    out.result.holds = false;
    // Walk bad successors until a state repeats: that's an adversarial lasso
    // whose cycle never reaches work conservation.
    std::vector<LoadVector> path;
    std::map<LoadVector, size_t> position;
    LoadVector current = bad_it->first;
    for (;;) {
      const auto seen = position.find(current);
      if (seen != position.end()) {
        out.livelock_cycle.assign(path.begin() + static_cast<long>(seen->second), path.end());
        break;
      }
      position[current] = path.size();
      path.push_back(current);
      const std::set<LoadVector>& succ = successors[current];
      const LoadVector* next_bad = nullptr;
      for (const LoadVector& next : succ) {
        if (!good[next]) {
          next_bad = &next;
          break;
        }
      }
      OPTSCHED_CHECK_MSG(next_bad != nullptr, "bad state with all-good successors");
      current = *next_bad;
    }
    out.result.counterexample = Counterexample{
        .loads = bad_it->first,
        .thief = std::nullopt,
        .stealee = std::nullopt,
        .steal_order = {},
        .note = CycleNote(out.livelock_cycle)};
    return out;
  }

  out.result.holds = true;
  // Worst-case N: longest path to a WC state in the (acyclic on non-WC
  // states) good graph. memoized DFS.
  std::map<LoadVector, uint64_t> depth;
  const std::function<uint64_t(const LoadVector&)> n_of = [&](const LoadVector& state) {
    if (IsWorkConserved(state)) {
      return uint64_t{0};
    }
    const auto memo = depth.find(state);
    if (memo != depth.end()) {
      return memo->second;
    }
    uint64_t worst = 0;
    for (const LoadVector& next : successors[state]) {
      worst = std::max(worst, n_of(next));
    }
    const uint64_t n = 1 + worst;
    depth[state] = n;
    return n;
  };
  for (const auto& [state, succ] : successors) {
    out.worst_case_rounds = std::max(out.worst_case_rounds, n_of(state));
  }

  // --- Fault-perturbed successor validation. --------------------------------
  // The AF proof above covers every adversarial steal order on the fault-free
  // engine. For each graph state, now execute sampled rounds with the fault
  // injector attached and require every landing state to be inside the proven
  // AF-good set: faults may delay convergence (drops, stalls) but must never
  // move the machine somewhere the adversary could starve from.
  if (options.fault_plan.any()) {
    fault::FaultInjector injector(options.fault_plan, options.bounds.num_cores);
    balancer.set_fault_injector(&injector);
    Rng probe_rng(options.seed * 0x9e3779b97f4a7c15ull + 1);
    for (const auto& [state, succ] : successors) {
      for (uint64_t probe = 0; probe < options.fault_probes_per_state; ++probe) {
        MachineState machine = MachineState::FromLoads(state);
        RoundOptions ropts;
        ropts.mode = RoundOptions::Mode::kConcurrentRandomOrder;
        balancer.RunRound(machine, probe_rng, ropts);
        const LoadVector next = canonical(machine.Loads(LoadMetric::kTaskCount));
        ++out.faulty_edges_checked;
        const auto landed = good.find(next);
        if (landed == good.end() || !landed->second) {
          out.result.holds = false;
          out.result.counterexample = Counterexample{
              .loads = state,
              .thief = std::nullopt,
              .stealee = std::nullopt,
              .steal_order = {},
              .note = "fault-perturbed round escaped the proven AF-good set"};
          balancer.set_fault_injector(nullptr);
          return out;
        }
      }
    }
    balancer.set_fault_injector(nullptr);
  }
  return out;
}

std::string ExportRoundGraphDot(const BalancePolicy& policy,
                                const ConvergenceCheckOptions& options,
                                const Topology* topology) {
  // Presentation-only rebuild of the graph CheckConcurrentConvergence
  // explores (the checker itself stays allocation-lean; this pretty printer
  // favours clarity over reuse).
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  LoadBalancer balancer(alias, topology);
  bool sampled = false;
  const std::vector<std::vector<uint32_t>> orders =
      MakeOrders(options.bounds.num_cores, options.max_orders_per_state, options.seed, &sampled);
  const auto canonical = [&](LoadVector state) {
    if (options.symmetry_reduction) {
      std::sort(state.begin(), state.end());
    }
    return state;
  };
  std::map<LoadVector, std::set<LoadVector>> successors;
  std::vector<LoadVector> frontier;
  const auto discover = [&](const LoadVector& state) {
    if (successors.emplace(state, std::set<LoadVector>{}).second) {
      frontier.push_back(state);
    }
  };
  Bounds initial_bounds = options.bounds;
  initial_bounds.sorted_only = options.symmetry_reduction || initial_bounds.sorted_only;
  ForEachState(initial_bounds, [&](const LoadVector& loads) {
    discover(canonical(loads));
    return true;
  });
  while (!frontier.empty()) {
    if (successors.size() > options.max_graph_states) {
      return "";
    }
    const LoadVector state = frontier.back();
    frontier.pop_back();
    std::set<LoadVector>& succ = successors[state];
    for (const auto& order : orders) {
      LoadVector next = canonical(Step(balancer, state, order, options.seed));
      succ.insert(next);
      discover(next);
    }
  }
  // AF fixpoint (as in the checker) so bad states can be coloured.
  std::map<LoadVector, bool> good;
  for (const auto& [state, succ] : successors) {
    good[state] = IsWorkConserved(state);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [state, succ] : successors) {
      if (good[state] || succ.empty()) {
        continue;
      }
      bool all_good = true;
      for (const LoadVector& next : succ) {
        all_good &= good[next];
      }
      if (all_good) {
        good[state] = true;
        changed = true;
      }
    }
  }

  const auto node_name = [](const LoadVector& state) {
    std::string name = "s";
    for (int64_t l : state) {
      name += StrFormat("_%lld", static_cast<long long>(l));
    }
    return name;
  };
  const auto node_label = [](const LoadVector& state) {
    std::string label = "(";
    for (size_t i = 0; i < state.size(); ++i) {
      label += StrFormat(i == 0 ? "%lld" : ",%lld", static_cast<long long>(state[i]));
    }
    return label + ")";
  };
  std::string out = "digraph round_transitions {\n";
  out += StrFormat("  label=\"%s: AF(work-conserved) round-transition graph\";\n",
                   JsonEscape(policy.name()).c_str());
  out += "  node [fontname=\"monospace\"];\n";
  for (const auto& [state, succ] : successors) {
    const bool conserved = IsWorkConserved(state);
    out += StrFormat("  %s [label=\"%s\"%s%s];\n", node_name(state).c_str(),
                     node_label(state).c_str(), conserved ? ", peripheries=2" : "",
                     good.at(state) ? "" : ", style=filled, fillcolor=\"#e06666\"");
    for (const LoadVector& next : succ) {
      out += StrFormat("  %s -> %s;\n", node_name(state).c_str(), node_name(next).c_str());
    }
  }
  out += "}\n";
  return out;
}

}  // namespace optsched::verify
