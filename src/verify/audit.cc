#include "src/verify/audit.h"

#include "src/base/str.h"

namespace optsched::verify {

std::string PolicyAudit::Report() const {
  std::string out =
      StrFormat("Policy audit: %s (cores=%u, max_load=%lld)\n", policy_name.c_str(),
                options.bounds.num_cores, static_cast<long long>(options.bounds.max_load));
  out += "  " + lemma1.ToString() + "\n";
  out += "  " + filter_selects_overloaded.ToString() + "\n";
  out += "  " + steal_safety.ToString() + "\n";
  out += "  " + potential_decrease.ToString() + "\n";
  if (weighted_lemma1.has_value()) {
    out += "  " + weighted_lemma1->ToString() + "\n";
    out += "  " + weighted_steal_safety->ToString() + "\n";
    out += "  " + weighted_potential->ToString() + "\n";
  }
  out += "  " + failure_causality.ToString() + "\n";
  out += "  " + bounded_steals.ToString() + "\n";
  out += "  " + sequential.result.ToString();
  if (sequential.result.holds) {
    out += StrFormat(" [worst-case N=%llu]",
                     static_cast<unsigned long long>(sequential.worst_case_rounds));
  }
  out += "\n  " + concurrent.result.ToString();
  if (concurrent.result.holds) {
    out += StrFormat(" [worst-case N=%llu over %llu graph states%s]",
                     static_cast<unsigned long long>(concurrent.worst_case_rounds),
                     static_cast<unsigned long long>(concurrent.graph_states),
                     concurrent.orders_sampled ? ", orders sampled" : "");
  }
  out += StrFormat("\n  VERDICT: %s\n",
                   work_conserving() ? "WORK-CONSERVING (within bounds)"
                                     : "NOT PROVEN WORK-CONSERVING");
  return out;
}

namespace {

std::string CheckToJson(const CheckResult& result) {
  std::string out = StrFormat(
      "{\"property\":\"%s\",\"holds\":%s,\"states\":%llu,\"checks\":%llu",
      JsonEscape(result.property).c_str(), result.holds ? "true" : "false",
      static_cast<unsigned long long>(result.states_checked),
      static_cast<unsigned long long>(result.checks_performed));
  if (result.counterexample.has_value()) {
    out += StrFormat(",\"counterexample\":\"%s\"",
                     JsonEscape(result.counterexample->ToString()).c_str());
  }
  out += "}";
  return out;
}

}  // namespace

std::string PolicyAudit::ToJson() const {
  std::string out = "{\n";
  out += StrFormat("  \"policy\": \"%s\",\n", JsonEscape(policy_name).c_str());
  out += StrFormat("  \"bounds\": {\"cores\": %u, \"max_load\": %lld},\n",
                   options.bounds.num_cores, static_cast<long long>(options.bounds.max_load));
  out += "  \"obligations\": {\n";
  out += "    \"lemma1\": " + CheckToJson(lemma1) + ",\n";
  out += "    \"filter_selects_overloaded\": " + CheckToJson(filter_selects_overloaded) + ",\n";
  out += "    \"steal_safety\": " + CheckToJson(steal_safety) + ",\n";
  out += "    \"potential_decrease\": " + CheckToJson(potential_decrease) + ",\n";
  out += "    \"failure_causality\": " + CheckToJson(failure_causality) + ",\n";
  out += "    \"bounded_steals\": " + CheckToJson(bounded_steals) + ",\n";
  out += "    \"sequential_convergence\": " + CheckToJson(sequential.result) + ",\n";
  out += "    \"concurrent_convergence\": " + CheckToJson(concurrent.result);
  if (weighted_lemma1.has_value()) {
    out += ",\n    \"weighted_lemma1\": " + CheckToJson(*weighted_lemma1);
    out += ",\n    \"weighted_steal_safety\": " + CheckToJson(*weighted_steal_safety);
    out += ",\n    \"weighted_potential_decrease\": " + CheckToJson(*weighted_potential);
  }
  out += "\n  },\n";
  out += StrFormat("  \"sequential_worst_case_n\": %llu,\n",
                   static_cast<unsigned long long>(sequential.worst_case_rounds));
  out += StrFormat("  \"concurrent_worst_case_n\": %llu,\n",
                   static_cast<unsigned long long>(concurrent.worst_case_rounds));
  out += StrFormat("  \"graph_states\": %llu,\n",
                   static_cast<unsigned long long>(concurrent.graph_states));
  out += StrFormat("  \"orders_sampled\": %s,\n", concurrent.orders_sampled ? "true" : "false");
  out += StrFormat("  \"work_conserving\": %s\n", work_conserving() ? "true" : "false");
  out += "}\n";
  return out;
}

PolicyAudit AuditPolicy(const BalancePolicy& policy, const ConvergenceCheckOptions& options,
                        const Topology* topology) {
  PolicyAudit audit;
  audit.policy_name = policy.name();
  audit.options = options;
  audit.lemma1 = CheckLemma1(policy, options.bounds, topology);
  audit.filter_selects_overloaded =
      CheckFilterSelectsOverloaded(policy, options.bounds, topology);
  audit.steal_safety = CheckStealSafety(policy, options.bounds, topology);
  audit.potential_decrease = CheckPotentialDecrease(policy, options.bounds, topology);
  audit.failure_causality = CheckFailureCausality(policy, options, topology);
  audit.bounded_steals = CheckBoundedSteals(policy, options, topology);
  audit.sequential = CheckSequentialConvergence(policy, options, topology);
  audit.concurrent = CheckConcurrentConvergence(policy, options, topology);
  if (policy.metric() == LoadMetric::kWeightedLoad) {
    WeightedBounds weighted;
    weighted.num_cores = std::min(options.bounds.num_cores, 3u);
    weighted.max_tasks_per_core = 2;
    weighted.weights = {1, 2, 5};
    audit.weighted_lemma1 = CheckWeightedLemma1(policy, weighted, topology);
    audit.weighted_steal_safety = CheckWeightedStealSafety(policy, weighted, topology);
    audit.weighted_potential = CheckWeightedPotentialDecrease(policy, weighted, topology);
  }
  return audit;
}

}  // namespace optsched::verify
