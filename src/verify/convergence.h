// Work-conservation as a liveness property, checked exhaustively.
//
// Sequential (§4.2): from every bounded start state, rounds in which cores
// act one-by-one must reach a work-conserved state; the checker also reports
// the worst-case number of rounds (the paper's N).
//
// Concurrent (§4.3): all cores select against the round-start snapshot and
// the steal serialization order is adversarial. The paper's definition —
// "there exists an integer N such that after N load balancing rounds no core
// is idle while a core is overloaded" — quantifies over every behaviour the
// scheduler can exhibit, so we check the CTL property AF(work-conserved) on
// the round-transition graph:
//
//   nodes:  load vectors reachable from any bounded start state;
//   edges:  one per (state, steal-order permutation) — the state after one
//           concurrent round executed in that order;
//   check:  every infinite adversarial path hits a work-conserved state.
//
// AF is computed by the standard backward fixpoint (good := WC states; add a
// state when ALL successors are good; repeat). States never added are exactly
// those from which an adversary can keep the machine non-work-conserved
// forever — for the §4.3 broken filter the checker extracts the concrete
// ping-pong cycle (0,1,2) -> (0,2,1) -> (0,1,2). For sound policies the
// worst-case N over the whole graph is reported.

#ifndef OPTSCHED_SRC_VERIFY_CONVERGENCE_H_
#define OPTSCHED_SRC_VERIFY_CONVERGENCE_H_

#include <cstdint>
#include <vector>

#include "src/core/policy.h"
#include "src/fault/fault.h"
#include "src/verify/property.h"
#include "src/verify/state_space.h"

namespace optsched::verify {

struct ConvergenceCheckOptions {
  Bounds bounds;
  // Safety valve for the graph exploration.
  uint64_t max_graph_states = 1u << 20;
  // If the number of steal-order permutations (num_cores!) exceeds this, the
  // check uses this many sampled orders per state instead of all of them and
  // the result is only a bounded/randomized guarantee (reported in the note).
  uint64_t max_orders_per_state = 5040;  // 7!
  // Round budget for the sequential check.
  uint64_t max_rounds = 4096;
  // Seed for order sampling and randomized choice steps.
  uint64_t seed = 1;
  // Quotient the state graph by core renaming: states are canonicalized to
  // sorted load vectors, shrinking the graph by up to num_cores! for
  // CORE-SYMMETRIC policies (no topology, no groups — the policy's decisions
  // must commute with core permutations; the checker cannot detect misuse,
  // so this is opt-in). Verdicts and worst-case N are preserved for
  // symmetric policies (tests compare against the unreduced run).
  bool symmetry_reduction = false;
  // Fault injection during checking (src/fault). Sequential: every start
  // state's convergence run executes with the injector attached, so the
  // verdict becomes "converges within the round budget under this seeded
  // fault trace" — a bounded probabilistic guarantee, not an exhaustive one
  // (a dropped round consumes budget without progress). Concurrent: the
  // fault-free AF(work-conserved) proof runs first and is unchanged; then
  // `fault_probes_per_state` fault-perturbed rounds are executed from every
  // graph state and each landing state must lie inside the proven AF-good
  // set. That factoring avoids the bogus AF failure a naive encoding hits
  // (dropped rounds are self-loops, and a self-loop on a non-conserved state
  // falsifies AF even though the fault process leaves it with probability 1).
  fault::FaultPlan fault_plan;
  uint64_t fault_probes_per_state = 4;
};

struct ConvergenceCheckResult {
  CheckResult result;
  // Worst-case N over all checked start states (sequential) or all graph
  // states (concurrent). Meaningful only when result.holds.
  uint64_t worst_case_rounds = 0;
  // Size of the explored round-transition graph (concurrent only).
  uint64_t graph_states = 0;
  // True if permutation sampling kicked in (concurrent only).
  bool orders_sampled = false;
  // Fault-perturbed successor probes validated against the AF-good set
  // (concurrent only; zero when options.fault_plan is all-zero).
  uint64_t faulty_edges_checked = 0;
  // The offending cycle of load vectors when a livelock was found.
  std::vector<std::vector<int64_t>> livelock_cycle;
};

ConvergenceCheckResult CheckSequentialConvergence(const BalancePolicy& policy,
                                                  const ConvergenceCheckOptions& options,
                                                  const Topology* topology = nullptr);

ConvergenceCheckResult CheckConcurrentConvergence(const BalancePolicy& policy,
                                                  const ConvergenceCheckOptions& options,
                                                  const Topology* topology = nullptr);

// Renders the explored round-transition graph as Graphviz dot: one node per
// load vector (doubly-circled when work-conserved, red-filled when AF fails
// — i.e. an adversary can starve from there forever), one edge per distinct
// successor. Meant for small bounds; returns an empty string if the graph
// budget is exceeded.
std::string ExportRoundGraphDot(const BalancePolicy& policy,
                                const ConvergenceCheckOptions& options,
                                const Topology* topology = nullptr);

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_CONVERGENCE_H_
