#include "src/verify/lemmas.h"

#include "src/core/balancer.h"
#include "src/sched/machine_state.h"

namespace optsched::verify {

namespace {

// The paper's predicates over bare loads (count semantics; anonymous tasks).
bool LoadIdle(int64_t load) { return load == 0; }
bool LoadOverloaded(int64_t load) { return load >= 2; }

}  // namespace

CheckResult CheckLemma1(const BalancePolicy& policy, const Bounds& bounds,
                        const Topology* topology) {
  CheckResult result;
  result.property = "lemma1(idle thief targets overloaded cores, and only them)";
  if (auto rejected = RejectUnsoundSymmetry(result.property, bounds.sorted_only, topology)) {
    return *rejected;
  }
  result.holds = true;
  result.states_checked = ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    const MachineState machine = MachineState::FromLoads(loads);
    const LoadSnapshot snapshot = machine.Snapshot();
    bool any_overloaded = false;
    for (int64_t l : loads) {
      any_overloaded |= LoadOverloaded(l);
    }
    for (CpuId thief = 0; thief < machine.num_cpus(); ++thief) {
      if (!LoadIdle(loads[thief])) {
        continue;  // Listing 2 line 6: @require(thief is idle)
      }
      ++result.checks_performed;
      const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
      const std::vector<CpuId> candidates = policy.FilterCandidates(view);
      // Conjunct 1: exists overloaded ==> exists stealable.
      if (any_overloaded && candidates.empty()) {
        result.holds = false;
        result.counterexample = Counterexample{
            .loads = loads,
            .thief = thief,
            .stealee = std::nullopt,
            .steal_order = {},
            .note = "an overloaded core exists but the idle thief's filter set is empty"};
        return false;
      }
      // Conjunct 2: every filtered core is overloaded.
      for (CpuId c : candidates) {
        if (!LoadOverloaded(loads[c])) {
          result.holds = false;
          result.counterexample =
              Counterexample{.loads = loads,
                             .thief = thief,
                             .stealee = c,
                             .steal_order = {},
                             .note = "filter admits a non-overloaded core"};
          return false;
        }
      }
    }
    return true;
  });
  return result;
}

CheckResult CheckFilterSelectsOverloaded(const BalancePolicy& policy, const Bounds& bounds,
                                         const Topology* topology) {
  CheckResult result;
  result.property = "filter-selects-overloaded(any thief)";
  if (auto rejected = RejectUnsoundSymmetry(result.property, bounds.sorted_only, topology)) {
    return *rejected;
  }
  result.holds = true;
  result.states_checked = ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    const MachineState machine = MachineState::FromLoads(loads);
    const LoadSnapshot snapshot = machine.Snapshot();
    for (CpuId thief = 0; thief < machine.num_cpus(); ++thief) {
      const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
      for (CpuId stealee = 0; stealee < machine.num_cpus(); ++stealee) {
        if (stealee == thief) {
          continue;
        }
        ++result.checks_performed;
        if (policy.CanSteal(view, stealee) && !LoadOverloaded(loads[stealee])) {
          result.holds = false;
          result.counterexample =
              Counterexample{.loads = loads,
                             .thief = thief,
                             .stealee = stealee,
                             .steal_order = {},
                             .note = "filter admits a non-overloaded core"};
          return false;
        }
      }
    }
    return true;
  });
  return result;
}

CheckResult CheckStealSafety(const BalancePolicy& policy, const Bounds& bounds,
                             const Topology* topology) {
  CheckResult result;
  result.property = "steal-safety(victim never idled, no task lost, idle thief succeeds)";
  if (auto rejected = RejectUnsoundSymmetry(result.property, bounds.sorted_only, topology)) {
    return *rejected;
  }
  result.holds = true;
  // ExecuteStealPhase requires shared ownership of the policy; alias with a
  // no-op deleter since `policy` outlives the balancer.
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  result.states_checked = ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    for (CpuId thief = 0; thief < static_cast<CpuId>(loads.size()); ++thief) {
      for (CpuId victim = 0; victim < static_cast<CpuId>(loads.size()); ++victim) {
        if (victim == thief) {
          continue;
        }
        MachineState machine = MachineState::FromLoads(loads);
        const LoadSnapshot snapshot = machine.Snapshot();
        const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
        if (!policy.CanSteal(view, victim)) {
          continue;
        }
        ++result.checks_performed;
        LoadBalancer balancer(alias, topology);
        const uint64_t tasks_before = machine.TotalTasks();
        const CoreAction action = balancer.ExecuteStealPhase(machine, thief, victim);
        auto fail = [&](const std::string& note) {
          result.holds = false;
          result.counterexample = Counterexample{
              .loads = loads, .thief = thief, .stealee = victim, .steal_order = {}, .note = note};
        };
        if (machine.TotalTasks() != tasks_before) {
          fail("steal phase lost or duplicated a task");
          return false;
        }
        if (action.outcome == StealOutcome::kStole) {
          if (machine.IsIdle(victim)) {
            fail("victim ended up idle after the steal ('stole too much')");
            return false;
          }
          if (machine.Load(thief, LoadMetric::kTaskCount) != loads[thief] + 1) {
            fail("thief did not gain exactly one task");
            return false;
          }
        } else if (LoadIdle(loads[thief])) {
          // Sequential setting: there is no concurrent interference, so an
          // idle thief whose filter admitted the victim must succeed
          // ("the idle core actually steals threads", §4.2).
          fail("idle thief's admitted steal failed without concurrency");
          return false;
        }
      }
    }
    return true;
  });
  return result;
}

CheckResult CheckPotentialDecrease(const BalancePolicy& policy, const Bounds& bounds,
                                   const Topology* topology) {
  CheckResult result;
  result.property = "potential-decrease(every successful steal strictly decreases d)";
  if (auto rejected = RejectUnsoundSymmetry(result.property, bounds.sorted_only, topology)) {
    return *rejected;
  }
  result.holds = true;
  const std::shared_ptr<const BalancePolicy> alias(&policy, [](const BalancePolicy*) {});
  const LoadMetric metric = policy.metric();
  result.states_checked = ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    for (CpuId thief = 0; thief < static_cast<CpuId>(loads.size()); ++thief) {
      for (CpuId victim = 0; victim < static_cast<CpuId>(loads.size()); ++victim) {
        if (victim == thief) {
          continue;
        }
        MachineState machine = MachineState::FromLoads(loads);
        const LoadSnapshot snapshot = machine.Snapshot();
        const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
        if (!policy.CanSteal(view, victim)) {
          continue;
        }
        ++result.checks_performed;
        const int64_t d_before = machine.Potential(metric);
        LoadBalancer balancer(alias, topology);
        const CoreAction action = balancer.ExecuteStealPhase(machine, thief, victim);
        if (action.outcome != StealOutcome::kStole) {
          continue;
        }
        const int64_t d_after = machine.Potential(metric);
        if (d_after >= d_before) {
          result.holds = false;
          result.counterexample = Counterexample{
              .loads = loads,
              .thief = thief,
              .stealee = victim,
              .steal_order = {},
              .note = "successful steal did not strictly decrease the potential d"};
          return false;
        }
      }
    }
    return true;
  });
  return result;
}

CheckResult CheckWithMinimalCounterexample(StateCheck check, const BalancePolicy& policy,
                                           const Bounds& bounds, const Topology* topology) {
  CheckResult aggregate;
  aggregate.holds = true;
  const int64_t max_total = bounds.max_load * static_cast<int64_t>(bounds.num_cores);
  for (int64_t total = 0; total <= max_total; ++total) {
    Bounds slice = bounds;
    slice.total_load = total;
    CheckResult result = check(policy, slice, topology);
    aggregate.property = result.property + " [minimal counterexample search]";
    aggregate.states_checked += result.states_checked;
    aggregate.checks_performed += result.checks_performed;
    if (!result.holds) {
      aggregate.holds = false;
      aggregate.counterexample = std::move(result.counterexample);
      return aggregate;  // first failing slice = fewest tasks
    }
  }
  return aggregate;
}

}  // namespace optsched::verify
