// One-call policy audit: run every proof obligation the paper defines and
// produce a verdict plus a human-readable report. This is the public face of
// the verification toolkit — the analog of handing the Leon backend a policy
// compiled from the DSL.

#ifndef OPTSCHED_SRC_VERIFY_AUDIT_H_
#define OPTSCHED_SRC_VERIFY_AUDIT_H_

#include <string>

#include <optional>

#include "src/core/policy.h"
#include "src/verify/concurrency.h"
#include "src/verify/convergence.h"
#include "src/verify/lemmas.h"
#include "src/verify/property.h"
#include "src/verify/weighted_space.h"

namespace optsched::verify {

struct PolicyAudit {
  std::string policy_name;
  ConvergenceCheckOptions options;

  // §4.2 obligations (sequential soundness of filter + steal).
  CheckResult lemma1;
  CheckResult filter_selects_overloaded;
  CheckResult steal_safety;
  // §4.3 obligations (concurrency).
  CheckResult potential_decrease;
  CheckResult failure_causality;
  CheckResult bounded_steals;
  // Work conservation itself.
  ConvergenceCheckResult sequential;
  ConvergenceCheckResult concurrent;
  // Weighted-space obligations: run automatically (over heterogeneous
  // per-core weight multisets) when the policy balances kWeightedLoad —
  // the load-vector space alone cannot distinguish weight compositions.
  std::optional<CheckResult> weighted_lemma1;
  std::optional<CheckResult> weighted_steal_safety;
  std::optional<CheckResult> weighted_potential;

  // The paper's top-level theorem: the policy is work-conserving within the
  // audited bounds — sequential and adversarial-concurrent convergence hold,
  // backed by sound filter/steal behaviour (including over weight multisets
  // for weighted policies).
  bool work_conserving() const {
    const bool weighted_ok =
        (!weighted_lemma1.has_value() || weighted_lemma1->holds) &&
        (!weighted_steal_safety.has_value() || weighted_steal_safety->holds);
    return lemma1.holds && steal_safety.holds && sequential.result.holds &&
           concurrent.result.holds && weighted_ok;
  }

  // True if every obligation (including the auxiliary ones) holds.
  bool all_hold() const {
    return work_conserving() && filter_selects_overloaded.holds && potential_decrease.holds &&
           failure_causality.holds && bounded_steals.holds &&
           (!weighted_potential.has_value() || weighted_potential->holds);
  }

  // Multi-line report: one obligation per line, then the verdict and the
  // worst-case N (the paper's bound) when it exists.
  std::string Report() const;

  // Machine-readable report (stable-key JSON), suitable for CI gates and
  // archival next to the policy source.
  std::string ToJson() const;
};

// Runs all obligations. `topology` is forwarded to topology-aware policies.
PolicyAudit AuditPolicy(const BalancePolicy& policy, const ConvergenceCheckOptions& options = {},
                        const Topology* topology = nullptr);

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_AUDIT_H_
