// The two concurrent-setting obligations of §4.3:
//
//  "to prove work conservation we need to prove two properties: first, if a
//   work-stealing attempt fails, it is because another work-stealing attempt
//   performed by another core succeeded, and second, the number of successful
//   work stealing attempts is bounded."
//
// CheckFailureCausality discharges the first: for every bounded state and
// every steal-serialization order, every failed re-check within a round is
// preceded (in that round's linearization) by a successful steal by another
// core — the only writers of runqueue state during balancing are successful
// steals, so a flipped filter implicates one. The property holds for every
// policy by construction of the optimistic protocol; checking it over all
// interleavings validates that the engine implements the protocol the proofs
// assume (selection never writes, steal phase is atomic).
//
// CheckBoundedSteals discharges the second: combined with PotentialDecrease
// (each successful steal decreases the integer potential d by at least 2),
// the number of successful steals from any state is at most d/2. The check
// runs adversarial rounds to quiescence from every bounded state and asserts
// the cumulative success count never exceeds d0/2 (for the broken filter it
// reports the state where steals exceeded the bound — the ping-pong).

#ifndef OPTSCHED_SRC_VERIFY_CONCURRENCY_H_
#define OPTSCHED_SRC_VERIFY_CONCURRENCY_H_

#include "src/core/policy.h"
#include "src/verify/convergence.h"
#include "src/verify/property.h"

namespace optsched::verify {

CheckResult CheckFailureCausality(const BalancePolicy& policy,
                                  const ConvergenceCheckOptions& options,
                                  const Topology* topology = nullptr);

CheckResult CheckBoundedSteals(const BalancePolicy& policy,
                               const ConvergenceCheckOptions& options,
                               const Topology* topology = nullptr);

}  // namespace optsched::verify

#endif  // OPTSCHED_SRC_VERIFY_CONCURRENCY_H_
