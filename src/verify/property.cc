#include "src/verify/property.h"

#include "src/base/str.h"

namespace optsched::verify {

namespace {

std::string LoadsToString(const std::vector<int64_t>& loads) {
  std::vector<std::string> parts;
  parts.reserve(loads.size());
  for (int64_t l : loads) {
    parts.push_back(StrFormat("%lld", static_cast<long long>(l)));
  }
  return "(" + Join(parts, ",") + ")";
}

}  // namespace

std::string Counterexample::ToString() const {
  std::string out = "loads=" + LoadsToString(loads);
  if (thief.has_value()) {
    out += StrFormat(" thief=%u", *thief);
  }
  if (stealee.has_value()) {
    out += StrFormat(" stealee=%u", *stealee);
  }
  if (!steal_order.empty()) {
    std::vector<std::string> parts;
    for (uint32_t c : steal_order) {
      parts.push_back(StrFormat("%u", c));
    }
    out += " order=[" + Join(parts, ",") + "]";
  }
  if (!note.empty()) {
    out += " note=\"" + note + "\"";
  }
  return out;
}

std::string CheckResult::ToString() const {
  if (holds) {
    return StrFormat("%s: HOLDS (%llu states, %llu checks)", property.c_str(),
                     static_cast<unsigned long long>(states_checked),
                     static_cast<unsigned long long>(checks_performed));
  }
  return StrFormat("%s: VIOLATED (%llu states, %llu checks) counterexample: %s",
                   property.c_str(), static_cast<unsigned long long>(states_checked),
                   static_cast<unsigned long long>(checks_performed),
                   counterexample.has_value() ? counterexample->ToString().c_str() : "<none>");
}

bool TopologyIsCoreSymmetric(const Topology& topology) {
  for (CpuId id = 0; id < topology.num_cpus(); ++id) {
    const CpuInfo& cpu = topology.cpu(id);
    // Any second node or package, or an SMT sibling, gives two cores the
    // machine itself tells apart — renaming them is not a symmetry.
    if (cpu.node != 0 || cpu.package != 0 || cpu.smt != 0) {
      return false;
    }
  }
  return true;
}

std::optional<CheckResult> RejectUnsoundSymmetry(const std::string& property, bool sorted_only,
                                                 const Topology* topology) {
  if (!sorted_only || topology == nullptr || TopologyIsCoreSymmetric(*topology)) {
    return std::nullopt;
  }
  CheckResult result;
  result.property = property;
  result.holds = false;
  result.counterexample = Counterexample{
      .loads = {},
      .thief = std::nullopt,
      .stealee = std::nullopt,
      .steal_order = {},
      .note = StrFormat(
          "refused: sorted_only symmetry reduction is unsound on a non-core-symmetric "
          "topology (%s) — a distance- or group-aware policy distinguishes the cores the "
          "reduction would merge; rerun without symmetry reduction",
          topology->ToString().c_str())};
  return result;
}

}  // namespace optsched::verify
