#include "src/base/rng.h"

#include <cmath>

namespace optsched {

double Rng::NextExponential(double rate) {
  OPTSCHED_CHECK(rate > 0.0);
  // Inverse-CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log1p(-u) / rate;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  OPTSCHED_CHECK(n > 0);
  if (s <= 0.0) {
    return NextBelow(n);
  }
  // Rejection-inversion sampling (Hormann & Derflinger) is overkill for the
  // sizes we use; a simple inverse-CDF walk over the normalized harmonic
  // weights is fine because workload key spaces are small (<= a few thousand).
  // For larger n we fall back to an approximate continuous inversion.
  if (n <= 4096) {
    double h = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      h += 1.0 / std::pow(static_cast<double>(i), s);
    }
    double u = NextDouble() * h;
    double acc = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), s);
      if (u <= acc) {
        return i - 1;
      }
    }
    return n - 1;
  }
  const double u = NextDouble();
  const double x = std::pow(static_cast<double>(n), 1.0 - s);
  const double v = std::pow((x - 1.0) * u + 1.0, 1.0 / (1.0 - s));
  uint64_t k = static_cast<uint64_t>(v);
  if (k >= n) {
    k = n - 1;
  }
  return k;
}

void Rng::Shuffle(std::vector<uint32_t>& values) {
  for (size_t i = values.size(); i > 1; --i) {
    const size_t j = NextBelow(i);
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace optsched
