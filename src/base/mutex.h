// Annotated mutex and lock guards for layers below src/runtime.
//
// The runtime's SpinLock (src/runtime/spinlock.h) carries the model-checking
// interposition seam and therefore lives in the runtime layer; code below it
// (src/trace, src/fault) cannot depend on it without a library cycle. This
// header provides the base-layer equivalent: a std::mutex wrapped as a Clang
// thread-safety capability, plus a generic OPTSCHED_SCOPED_CAPABILITY
// LockGuard usable with ANY annotated capability type (base::Mutex here,
// runtime::SpinLock in the runtime). Observability-layer classes guard their
// shared state with these, so the same -Wthread-safety build that checks the
// steal protocol also checks the collectors watching it.

#ifndef OPTSCHED_SRC_BASE_MUTEX_H_
#define OPTSCHED_SRC_BASE_MUTEX_H_

#include <mutex>

#include "src/base/thread_annotations.h"

namespace optsched {

// std::mutex as an annotated capability. Blocking, not hot-path: this is for
// control-plane state (metrics registries, collector merge buffers), never
// for the runqueue protocol the paper reasons about.
class OPTSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OPTSCHED_ACQUIRE() { mutex_.lock(); }
  void unlock() OPTSCHED_RELEASE() { mutex_.unlock(); }
  bool try_lock() OPTSCHED_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

// RAII guard the analysis can follow (std::lock_guard is not annotated in
// libstdc++, so locks taken through it are invisible to -Wthread-safety).
// Works with any OPTSCHED_CAPABILITY class exposing lock()/unlock().
template <typename MutexType>
class OPTSCHED_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(MutexType& mutex) OPTSCHED_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() OPTSCHED_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  MutexType& mutex_;
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_BASE_MUTEX_H_
