// Non-owning, non-allocating reference to a callable — the hot-path
// replacement for std::function in the steal phase.
//
// std::function type-erases by (potentially) heap-allocating a copy of the
// callable; constructing one per steal attempt puts an allocator call inside
// the two-lock critical section, which is exactly the synchronization
// overhead the optimistic protocol exists to avoid. FunctionRef erases
// through a {void*, function pointer} pair instead: zero allocation, two
// words, trivially copyable. The referenced callable must outlive the
// FunctionRef — callers pass stack lambdas down the call chain, never store
// the ref.

#ifndef OPTSCHED_SRC_BASE_FUNCTION_REF_H_
#define OPTSCHED_SRC_BASE_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace optsched {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_BASE_FUNCTION_REF_H_
