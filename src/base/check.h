// Lightweight runtime-checking macros used throughout optsched.
//
// OPTSCHED_CHECK is always on (release and debug): scheduler-model invariants
// are cheap integer comparisons and a violated invariant invalidates every
// result downstream, so we never compile them out. OPTSCHED_DCHECK is for
// hot-path checks that are elided in NDEBUG builds.

#ifndef OPTSCHED_SRC_BASE_CHECK_H_
#define OPTSCHED_SRC_BASE_CHECK_H_

#include <cstdint>
#include <string_view>

namespace optsched {

// Prints a diagnostic including file/line and the failed condition, then
// aborts. Marked noreturn so CHECK can be used in value-returning paths.
[[noreturn]] void CheckFailed(const char* file, int line, const char* condition,
                              std::string_view message);

}  // namespace optsched

#define OPTSCHED_CHECK(cond)                                        \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::optsched::CheckFailed(__FILE__, __LINE__, #cond, "");       \
    }                                                               \
  } while (false)

#define OPTSCHED_CHECK_MSG(cond, msg)                               \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::optsched::CheckFailed(__FILE__, __LINE__, #cond, (msg));    \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define OPTSCHED_DCHECK(cond) \
  do {                        \
  } while (false)
#else
#define OPTSCHED_DCHECK(cond) OPTSCHED_CHECK(cond)
#endif

#endif  // OPTSCHED_SRC_BASE_CHECK_H_
