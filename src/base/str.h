// Small string helpers shared by diagnostics, the DSL, and table emitters.

#ifndef OPTSCHED_SRC_BASE_STR_H_
#define OPTSCHED_SRC_BASE_STR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace optsched {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins the elements with the separator: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Renders a fixed-width text table (used by bench binaries to print the
// paper-style result rows). Columns are sized to the widest cell.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// Escapes a string for inclusion inside a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(std::string_view text);

}  // namespace optsched

#endif  // OPTSCHED_SRC_BASE_STR_H_
