// Clang Thread Safety Analysis annotations (docs/static_analysis.md).
//
// These macros turn the locking discipline the paper's argument rests on —
// selection is lock-free, stealing holds exactly the thief's and victim's
// runqueue locks in queue-index order (§3.1) — from comments into
// machine-checked structure: a clang build with -Wthread-safety
// -Werror=thread-safety FAILS when a GUARDED_BY field is touched without its
// lock, a REQUIRES method is called lock-free, or a capability is acquired
// twice. Under GCC (and any non-clang compiler) every macro expands to
// nothing, so the annotations are free where the analysis is unavailable.
//
// Conventions (enforced by tools/lint/optsched_lint.py and CI):
//  * Lock-protected fields carry OPTSCHED_GUARDED_BY(lock_).
//  * Methods named *Locked carry OPTSCHED_REQUIRES(lock_) — the suffix is the
//    human-readable form, the attribute is the checked one.
//  * Lock accessors carry OPTSCHED_RETURN_CAPABILITY so guards acquired
//    through them resolve to the underlying capability.
//  * Dynamically-ordered acquisitions (rank decided at runtime, e.g. the
//    queue-index ranking in TrySteal) re-anchor the analysis with
//    SpinLock::AssertHeld() immediately after the guard — see
//    docs/static_analysis.md, "Dynamic lock order".

#ifndef OPTSCHED_SRC_BASE_THREAD_ANNOTATIONS_H_
#define OPTSCHED_SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define OPTSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OPTSCHED_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// Marks a class as a lockable capability ("mutex" is the kind reported in
// diagnostics).
#define OPTSCHED_CAPABILITY(x) OPTSCHED_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability.
#define OPTSCHED_SCOPED_CAPABILITY OPTSCHED_THREAD_ANNOTATION(scoped_lockable)

// Field is protected by the given capability; access requires holding it.
#define OPTSCHED_GUARDED_BY(x) OPTSCHED_THREAD_ANNOTATION(guarded_by(x))

// Pointer field whose pointee is protected by the given capability.
#define OPTSCHED_PT_GUARDED_BY(x) OPTSCHED_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the capabilities to be held on entry (and does not
// release them).
#define OPTSCHED_REQUIRES(...) \
  OPTSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function acquires the capabilities (held on return, not on entry).
#define OPTSCHED_ACQUIRE(...) \
  OPTSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function releases the capabilities (held on entry, not on return).
#define OPTSCHED_RELEASE(...) \
  OPTSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function attempts the acquisition; the first argument is the return value
// meaning "acquired".
#define OPTSCHED_TRY_ACQUIRE(...) \
  OPTSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called with the capabilities held (internal locking).
#define OPTSCHED_EXCLUDES(...) \
  OPTSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Tells the analysis the capability is held without acquiring it — the
// re-anchor for dynamically-ordered acquisitions the analysis cannot follow.
#define OPTSCHED_ASSERT_CAPABILITY(x) \
  OPTSCHED_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the given capability (lock accessors).
#define OPTSCHED_RETURN_CAPABILITY(x) \
  OPTSCHED_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining why the discipline cannot be expressed (e.g. a
// loop-carried all-queues acquisition).
#define OPTSCHED_NO_THREAD_SAFETY_ANALYSIS \
  OPTSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

// Hot-path marker (DESIGN.md D7): the function is part of the allocation-free
// selection + steal path. tools/lint/optsched_lint.py bans heap allocation
// and container growth inside functions marked with it (rule hot-path-alloc);
// deliberate refill-in-place sites carry an inline allow marker with the
// rationale. Expands to a clang `annotate` attribute so IR-level tooling can
// find hot-path functions too; textual tools key on the macro name.
#if defined(__clang__)
#define OPTSCHED_HOT_PATH __attribute__((annotate("optsched_hot_path")))
#else
#define OPTSCHED_HOT_PATH
#endif

#endif  // OPTSCHED_SRC_BASE_THREAD_ANNOTATIONS_H_
