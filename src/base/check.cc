#include "src/base/check.h"

#include <cstdio>
#include <cstdlib>

namespace optsched {

void CheckFailed(const char* file, int line, const char* condition, std::string_view message) {
  if (message.empty()) {
    std::fprintf(stderr, "OPTSCHED_CHECK failed at %s:%d: %s\n", file, line, condition);
  } else {
    std::fprintf(stderr, "OPTSCHED_CHECK failed at %s:%d: %s (%.*s)\n", file, line, condition,
                 static_cast<int>(message.size()), message.data());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace optsched
