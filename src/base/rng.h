// Deterministic pseudo-random number generation.
//
// All randomized components of optsched (workload generators, the adversarial
// interleaving explorer, property-based tests) take an explicit Rng so that
// every run is reproducible from a single 64-bit seed. The generator is
// SplitMix64: tiny state, excellent statistical quality for simulation
// purposes, and trivially splittable (Fork) so that concurrent components can
// draw independent streams without sharing mutable state.

#ifndef OPTSCHED_SRC_BASE_RNG_H_
#define OPTSCHED_SRC_BASE_RNG_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"

namespace optsched {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64 step).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection sampling
  // to avoid modulo bias (the bias matters for exhaustive-ish sweeps where we
  // enumerate many small ranges).
  uint64_t NextBelow(uint64_t bound) {
    OPTSCHED_CHECK(bound > 0);
    const uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    OPTSCHED_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    // 53 random mantissa bits.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponentially distributed value with the given rate (mean 1/rate).
  double NextExponential(double rate);

  // Zipf-distributed integer in [0, n) with skew parameter s (s == 0 is
  // uniform). Used by the OLTP workload generator for hot-key behaviour.
  uint64_t NextZipf(uint64_t n, double s);

  // Returns a generator seeded from this one but statistically independent.
  Rng Fork() { return Rng(Next() ^ 0xa02bdbf7bb3c0a7ull); }

  // Fisher-Yates shuffle of an index vector; used to randomize orderings
  // (e.g. the order cores act within a load-balancing round).
  void Shuffle(std::vector<uint32_t>& values);

 private:
  uint64_t state_;
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_BASE_RNG_H_
