#include "src/base/str.h"

#include <cstdarg>
#include <cstdio>

#include "src/base/check.h"

namespace optsched {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  OPTSCHED_CHECK(needed >= 0);
  std::string out(static_cast<size_t>(needed), '\0');
  // +1 for the terminating NUL vsnprintf writes; std::string guarantees the
  // buffer is needed+1 bytes via data() in C++11 and later.
  std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
                         text[begin] == '\r')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' || text[end - 1] == '\n' ||
                         text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    OPTSCHED_CHECK_MSG(row.size() == header.size(), "table row width mismatch");
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out.append(c == 0 ? "| " : " | ");
      out.append(row[c]);
      out.append(widths[c] - row[c].size(), ' ');
    }
    out.append(" |\n");
  };
  std::string out;
  emit_row(header, out);
  for (size_t c = 0; c < header.size(); ++c) {
    out.append(c == 0 ? "|-" : "-|-");
    out.append(widths[c], '-');
  }
  out.append("-|\n");
  for (const auto& row : rows) {
    emit_row(row, out);
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace optsched
