// IngressRouter: the connection-shard side of the serving front end
// (docs/serving.md).
//
// N producer shards (one thread each, lane-owned like FaultInjector lanes)
// accept keyed session work and Offer() it toward the session's HOME worker
// — a stable hash of the session key, so a session's items always target the
// same mailbox and per-session FIFO order is preserved whenever the policy
// admits at home. On a full home mailbox the shard's AdmissionConfig decides
// (admission.h): shed at the edge, spill to a ring-order sibling, or block
// the shard until space or deadline.
//
// Observability is first-class because overload is the normal case this
// subsystem exists for: every shard keeps offered/admitted/spilled/shed
// counters, an admission-latency histogram, and an optional TraceBuffer of
// shed/spill/block/fault events; ExportMetrics flattens all of it into the
// run's MetricsRegistry next to the executor's counters. Fault injection
// (mailbox enqueue failure, stalled producer) draws from a router-owned
// FaultInjector whose lanes are SHARDS, keeping the probes deterministic
// and unsynchronized exactly like the executor's per-worker lanes.

#ifndef OPTSCHED_SRC_INGRESS_ROUTER_H_
#define OPTSCHED_SRC_INGRESS_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fault/fault.h"
#include "src/ingress/admission.h"
#include "src/ingress/mailbox.h"
#include "src/stats/histogram.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace optsched::ingress {

struct RouterConfig {
  uint32_t num_shards = 1;
  // Default admission config, used for every shard not covered by
  // `shard_admission` (which may be empty or shorter than num_shards).
  AdmissionConfig admission;
  std::vector<AdmissionConfig> shard_admission;
  // Ingress fault plan; lanes are shards. A plan with no ingress rates
  // attaches no injector.
  fault::FaultPlan fault_plan;
  // Per-shard trace capacity; 0 disables router tracing.
  size_t trace_capacity_per_shard = 0;
};

// Per-shard accounting. Each shard is written by exactly one producer
// thread (the lane-ownership contract); read the set only at quiescence.
// Invariant at quiescence: offered == admitted_home + admitted_spill + shed.
struct alignas(64) ShardStats {
  uint64_t offered = 0;
  uint64_t admitted_home = 0;
  uint64_t admitted_spill = 0;
  uint64_t shed = 0;
  // Deadline expiries under kBlockWithDeadline (every one is also a shed).
  uint64_t block_timeouts = 0;
  // Injected TryPush failures observed by this shard (also counted by the
  // injector itself; kept here so per-shard visibility survives merging).
  uint64_t enqueue_faults = 0;
  // Offer-entry to admit/shed decision, ns.
  stats::LogHistogram admission_ns;
};

class IngressRouter {
 public:
  // `mailboxes` must outlive the router and have one mailbox per worker.
  IngressRouter(MailboxSet& mailboxes, const RouterConfig& config);

  uint32_t num_shards() const { return config_.num_shards; }
  uint32_t num_workers() const { return mailboxes_.num_mailboxes(); }

  // The session's stable home worker.
  uint32_t HomeWorker(uint64_t session_key) const;

  // Offers one item from `shard` (caller = that shard's producer thread).
  // Stamps nothing: the caller owns item.arrival_ns. Applies the shard's
  // admission policy; the result says where the item went (or that it was
  // shed) and how long the decision took.
  AdmitResult Offer(uint32_t shard, uint64_t session_key, const WorkItem& item);

  const AdmissionConfig& admission_for(uint32_t shard) const;
  const ShardStats& shard_stats(uint32_t shard) const;
  // Sums counters and merges histograms across shards (quiescence contract).
  ShardStats TotalStats() const;
  // Null when the plan has no ingress rates.
  fault::FaultInjector* injector() { return injector_.get(); }

  // All shards' trace events, time-sorted (quiescence contract).
  std::vector<trace::TraceEvent> CollectTrace() const;

  // Flattens router state under "ingress." (totals, per-policy outcomes,
  // admission-latency percentiles, mailbox depths/rejections).
  void ExportMetrics(trace::MetricsRegistry& metrics) const;

 private:
  struct alignas(64) Shard {
    ShardStats stats;
    trace::TraceBuffer trace{0};
  };

  // One TryPush against `worker` with the enqueue-fault seam applied.
  bool TryPushFaulted(uint32_t shard, uint32_t worker, const WorkItem& item,
                      uint64_t now_us);

  MailboxSet& mailboxes_;
  RouterConfig config_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t start_ns_ = 0;
};

}  // namespace optsched::ingress

#endif  // OPTSCHED_SRC_INGRESS_ROUTER_H_
