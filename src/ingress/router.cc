#include "src/ingress/router.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::ingress {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// FNV-1a over the key's bytes: stable (the session->home mapping must not
// change across runs or processes) and well-mixed for sequential ids, which
// is what the benchmark generates.
uint64_t HashSessionKey(uint64_t key) {
  uint64_t hash = 1469598103934665603ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= (key >> (i * 8)) & 0xffull;
    hash *= 1099511628211ull;
  }
  return hash;
}

const char* AdmissionPolicyNames[] = {"shed", "spill", "block"};

}  // namespace

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  return AdmissionPolicyNames[static_cast<int>(policy)];
}

AdmissionPolicy AdmissionPolicyFromName(const char* name) {
  const std::string spelled(name == nullptr ? "" : name);
  if (spelled == "spill" || spelled == "spill-to-sibling") {
    return AdmissionPolicy::kSpillToSibling;
  }
  if (spelled == "block" || spelled == "block-with-deadline") {
    return AdmissionPolicy::kBlockWithDeadline;
  }
  return AdmissionPolicy::kShed;
}

IngressRouter::IngressRouter(MailboxSet& mailboxes, const RouterConfig& config)
    : mailboxes_(mailboxes), config_(config), start_ns_(NowNs()) {
  OPTSCHED_CHECK(config.num_shards > 0);
  if (config_.fault_plan.mailbox_enqueue_fail_rate > 0 ||
      config_.fault_plan.producer_stall_rate > 0) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.fault_plan, config_.num_shards);
  }
  shards_.reserve(config_.num_shards);
  for (uint32_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->trace = trace::TraceBuffer(config_.trace_capacity_per_shard);
    shards_.push_back(std::move(shard));
  }
}

uint32_t IngressRouter::HomeWorker(uint64_t session_key) const {
  return static_cast<uint32_t>(HashSessionKey(session_key) % mailboxes_.num_mailboxes());
}

const AdmissionConfig& IngressRouter::admission_for(uint32_t shard) const {
  if (shard < config_.shard_admission.size()) {
    return config_.shard_admission[shard];
  }
  return config_.admission;
}

const ShardStats& IngressRouter::shard_stats(uint32_t shard) const {
  OPTSCHED_CHECK(shard < shards_.size());
  return shards_[shard]->stats;
}

ShardStats IngressRouter::TotalStats() const {
  ShardStats total;
  for (const auto& shard : shards_) {
    const ShardStats& s = shard->stats;
    total.offered += s.offered;
    total.admitted_home += s.admitted_home;
    total.admitted_spill += s.admitted_spill;
    total.shed += s.shed;
    total.block_timeouts += s.block_timeouts;
    total.enqueue_faults += s.enqueue_faults;
    total.admission_ns.Merge(s.admission_ns);
  }
  return total;
}

bool IngressRouter::TryPushFaulted(uint32_t shard_idx, uint32_t worker, const WorkItem& item,
                                   uint64_t now_us) {
  Shard& shard = *shards_[shard_idx];
  if (injector_ != nullptr && injector_->FailMailboxEnqueue(shard_idx)) {
    ++shard.stats.enqueue_faults;
    shard.trace.Record({.time = now_us,
                        .type = trace::EventType::kEnqueueFault,
                        .cpu = worker,
                        .task = item.id});
    return false;
  }
  return mailboxes_.Push(worker, item);
}

AdmitResult IngressRouter::Offer(uint32_t shard_idx, uint64_t session_key,
                                 const WorkItem& item) {
  OPTSCHED_CHECK(shard_idx < shards_.size());
  Shard& shard = *shards_[shard_idx];
  const AdmissionConfig& admission = admission_for(shard_idx);
  const auto trace_now_us = [&] { return (NowNs() - start_ns_) / 1000; };

  // Injected stall first: a stuck connection handler delays the offer
  // itself, so the stall is visible downstream as added sojourn, not as a
  // mailbox anomaly.
  if (injector_ != nullptr && injector_->StallProducer(shard_idx)) {
    const uint64_t stall_us = config_.fault_plan.producer_stall_us;
    shard.trace.Record({.time = trace_now_us(),
                        .type = trace::EventType::kProducerStall,
                        .cpu = HomeWorker(session_key),
                        .task = item.id,
                        .detail = static_cast<int64_t>(stall_us)});
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }

  ++shard.stats.offered;
  const uint32_t home = HomeWorker(session_key);
  const uint64_t t0 = NowNs();
  AdmitResult result;
  result.worker = home;

  if (TryPushFaulted(shard_idx, home, item, trace_now_us())) {
    result.outcome = AdmitOutcome::kAdmittedHome;
    ++shard.stats.admitted_home;
  } else {
    switch (admission.policy) {
      case AdmissionPolicy::kShed:
        break;  // terminal: result stays kShed
      case AdmissionPolicy::kSpillToSibling: {
        const uint32_t workers = mailboxes_.num_mailboxes();
        for (uint32_t hop = 1; hop <= admission.max_spill_hops; ++hop) {
          const uint32_t target = (home + hop) % workers;
          if (target == home) {
            break;  // fewer workers than hops: wrapped all the way around
          }
          if (TryPushFaulted(shard_idx, target, item, trace_now_us())) {
            result.outcome = AdmitOutcome::kAdmittedSpill;
            result.worker = target;
            ++shard.stats.admitted_spill;
            shard.trace.Record({.time = trace_now_us(),
                                .type = trace::EventType::kAdmissionSpill,
                                .cpu = home,
                                .task = item.id,
                                .other_cpu = target});
            break;
          }
        }
        break;
      }
      case AdmissionPolicy::kBlockWithDeadline: {
        const uint64_t deadline_ns = t0 + admission.block_deadline_us * 1000;
        while (NowNs() < deadline_ns) {
          std::this_thread::sleep_for(std::chrono::microseconds(admission.block_poll_us));
          if (TryPushFaulted(shard_idx, home, item, trace_now_us())) {
            // Late admission at home: ordering and locality preserved, paid
            // for with the shard's own time.
            result.outcome = AdmitOutcome::kAdmittedHome;
            ++shard.stats.admitted_home;
            break;
          }
        }
        if (result.outcome == AdmitOutcome::kShed) {
          ++shard.stats.block_timeouts;
          shard.trace.Record({.time = trace_now_us(),
                              .type = trace::EventType::kAdmissionBlock,
                              .cpu = home,
                              .task = item.id,
                              .detail = static_cast<int64_t>((NowNs() - t0) / 1000)});
        }
        break;
      }
    }
  }

  if (result.outcome == AdmitOutcome::kShed) {
    ++shard.stats.shed;
    shard.trace.Record({.time = trace_now_us(),
                        .type = trace::EventType::kAdmissionShed,
                        .cpu = home,
                        .task = item.id,
                        .detail = mailboxes_.PendingFor(home)});
  }
  result.admit_ns = NowNs() - t0;
  shard.stats.admission_ns.Add(result.admit_ns);
  return result;
}

std::vector<trace::TraceEvent> IngressRouter::CollectTrace() const {
  std::vector<trace::TraceEvent> all;
  for (const auto& shard : shards_) {
    const auto& events = shard->trace.events();
    all.insert(all.end(), events.begin(), events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const trace::TraceEvent& a, const trace::TraceEvent& b) { return a.time < b.time; });
  return all;
}

void IngressRouter::ExportMetrics(trace::MetricsRegistry& metrics) const {
  const ShardStats total = TotalStats();
  metrics.Add("ingress.offered", static_cast<double>(total.offered));
  metrics.Add("ingress.admitted_home", static_cast<double>(total.admitted_home));
  metrics.Add("ingress.admitted_spill", static_cast<double>(total.admitted_spill));
  metrics.Add("ingress.shed", static_cast<double>(total.shed));
  metrics.Add("ingress.block_timeouts", static_cast<double>(total.block_timeouts));
  metrics.Add("ingress.enqueue_faults", static_cast<double>(total.enqueue_faults));
  metrics.Set("ingress.admission_ns.p50", total.admission_ns.Percentile(0.50));
  metrics.Set("ingress.admission_ns.p99", total.admission_ns.Percentile(0.99));
  for (uint32_t w = 0; w < mailboxes_.num_mailboxes(); ++w) {
    const BoundedMailbox& mailbox = mailboxes_.mailbox(w);
    metrics.Set(StrFormat("ingress.mailbox%u.depth", w),
                static_cast<double>(mailbox.ApproxDepth()));
    metrics.Add(StrFormat("ingress.mailbox%u.pushed", w),
                static_cast<double>(mailbox.total_pushed()));
    metrics.Add(StrFormat("ingress.mailbox%u.rejected_full", w),
                static_cast<double>(mailbox.total_rejected_full()));
  }
  if (injector_ != nullptr) {
    const fault::FaultStats faults = injector_->stats();
    metrics.Add("ingress.faults.enqueue_failures",
                static_cast<double>(faults.mailbox_enqueue_failures));
    metrics.Add("ingress.faults.producer_stalls",
                static_cast<double>(faults.producer_stalls));
  }
}

}  // namespace optsched::ingress
