#include "src/ingress/mailbox.h"

#include "src/base/check.h"
#include "src/base/mutex.h"
#include "src/runtime/mc_hooks.h"

namespace optsched::ingress {

namespace mc_hooks = runtime::mc_hooks;

// ring_ is sized once here (member initialization needs no lock — the object
// is not shared until the constructor returns) and never reallocated: every
// push lands in a preexisting slot, so admission is allocation-free.
BoundedMailbox::BoundedMailbox(uint32_t capacity) : capacity_(capacity), ring_(capacity) {
  OPTSCHED_CHECK(capacity > 0);
}

bool BoundedMailbox::TryPush(const WorkItem& item, bool* was_empty_out) {
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kMailboxPush, &depth_);
  bool was_empty = false;
  bool pushed = false;
  {
    LockGuard guard(lock_);
    if (size_ < capacity_) {
      was_empty = (size_ == 0);
      ring_[(head_ + size_) % capacity_] = item;
      ++size_;
      // Published AFTER the slot write, inside the critical section: a
      // reader that observes the new depth and then drains is ordered
      // behind this store by the lock; lock-free depth readers only need
      // the count, never the slots.
      depth_.store(static_cast<int64_t>(size_), std::memory_order_release);
      pushed = true;
    }
  }
  if (pushed) {
    pushed_.fetch_add(1, std::memory_order_relaxed);  // order: reporting-counter
  } else {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);  // order: reporting-counter
  }
  if (was_empty_out != nullptr) {
    *was_empty_out = was_empty;
  }
  return pushed;
}

uint32_t BoundedMailbox::DrainInto(std::vector<WorkItem>& out, uint32_t max_items) {
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kMailboxDrain, &depth_);
  uint32_t moved = 0;
  {
    LockGuard guard(lock_);
    while (size_ > 0 && moved < max_items) {
      out.push_back(ring_[head_]);
      head_ = (head_ + 1) % capacity_;
      --size_;
      ++moved;
    }
    if (moved > 0) {
      // One publish per drain action, not per item (publish batching, the
      // same discipline StealTailLocked follows for the runqueue seqlock).
      depth_.store(static_cast<int64_t>(size_), std::memory_order_release);
    }
  }
  if (moved > 0) {
    drained_.fetch_add(moved, std::memory_order_relaxed);  // order: reporting-counter
  }
  return moved;
}

int64_t BoundedMailbox::ApproxDepth() const {
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kMailboxDepth, &depth_);
  return depth_.load(std::memory_order_acquire);
}

MailboxSet::MailboxSet(uint32_t num_workers, uint32_t capacity_per_mailbox,
                       std::function<void(uint32_t)> notify)
    : notify_(std::move(notify)) {
  OPTSCHED_CHECK(num_workers > 0);
  mailboxes_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    mailboxes_.push_back(std::make_unique<BoundedMailbox>(capacity_per_mailbox));
  }
}

bool MailboxSet::Push(uint32_t worker, const WorkItem& item) {
  OPTSCHED_CHECK(worker < mailboxes_.size());
  bool was_empty = false;
  if (!mailboxes_[worker]->TryPush(item, &was_empty)) {
    return false;
  }
  // Notify strictly AFTER the item is visible in the mailbox: a woken owner
  // re-checks PendingFor before re-parking, and the executor's wakeup epoch
  // is sampled before that re-check, so this ordering is what makes the
  // wakeup lost-free (see Executor::NotifyIngress).
  if (was_empty && notify_) {
    notify_(worker);
  }
  return true;
}

uint32_t MailboxSet::Drain(uint32_t worker, std::vector<WorkItem>& out, uint32_t max_items) {
  OPTSCHED_CHECK(worker < mailboxes_.size());
  return mailboxes_[worker]->DrainInto(out, max_items);
}

int64_t MailboxSet::PendingFor(uint32_t worker) const {
  OPTSCHED_CHECK(worker < mailboxes_.size());
  return mailboxes_[worker]->ApproxDepth();
}

int64_t MailboxSet::TotalPending() const {
  int64_t total = 0;
  for (const auto& mailbox : mailboxes_) {
    total += mailbox->ApproxDepth();
  }
  return total;
}

}  // namespace optsched::ingress
