#include "src/ingress/deal_channel.h"

namespace optsched::ingress {

DealChannel::DealChannel(uint32_t num_workers, uint32_t capacity_per_mailbox,
                         std::function<void(uint32_t)> notify)
    : notify_(std::move(notify)) {
  mailboxes_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    mailboxes_.push_back(std::make_unique<BoundedMailbox>(capacity_per_mailbox));
  }
}

uint32_t DealChannel::PushDealt(uint32_t worker, const runtime::WorkItem* items,
                                uint32_t count) {
  BoundedMailbox& box = *mailboxes_[worker];
  uint32_t accepted = 0;
  bool fire_notify = false;
  while (accepted < count) {
    bool was_empty = false;
    if (!box.TryPush(items[accepted], &was_empty)) {
      // Prefix acceptance: stop at the first refusal. The dealer owns the
      // tail; one rejected-count bump covers the whole refused run.
      // order: reporting-counter
      dealt_rejected_.fetch_add(count - accepted, std::memory_order_relaxed);
      break;
    }
    fire_notify |= was_empty;
    ++accepted;
  }
  if (accepted > 0) {
    dealt_pushed_.fetch_add(accepted, std::memory_order_relaxed);  // order: reporting-counter
  }
  // Notify AFTER the items are visible (bump-after-publish), once per batch
  // on the empty->non-empty edge — a parked recipient is woken once per
  // deal, not once per item.
  if (fire_notify && notify_) {
    notify_(worker);
  }
  return accepted;
}

uint32_t DealChannel::DrainDealt(uint32_t worker, std::vector<runtime::WorkItem>& out,
                                 uint32_t max_items) {
  const uint32_t moved = mailboxes_[worker]->DrainInto(out, max_items);
  if (moved > 0) {
    dealt_drained_.fetch_add(moved, std::memory_order_relaxed);  // order: reporting-counter
  }
  return moved;
}

int64_t DealChannel::DealtPendingFor(uint32_t worker) const {
  return mailboxes_[worker]->ApproxDepth();
}

int64_t DealChannel::TotalDealtPending() const {
  int64_t total = 0;
  for (const auto& box : mailboxes_) {
    total += box->ApproxDepth();
  }
  return total;
}

}  // namespace optsched::ingress
