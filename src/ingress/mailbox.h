// Bounded per-worker MPSC mailboxes: the serving front end's admission
// buffer (docs/serving.md).
//
// Producers (connection shards, src/ingress/router.h) never touch a
// runqueue: they TryPush into the target worker's BoundedMailbox, and the
// OWNER drains the mailbox into its own runqueue at round boundaries. The
// bound is the whole point — a mailbox that cannot grow turns overload into
// an explicit admission decision (shed / spill / block, admission.h) taken
// at the edge, instead of an unbounded queue that converts overload into
// unbounded latency and an eventual OOM.
//
// Concurrency structure mirrors ConcurrentRunQueue: a SpinLock-protected
// fixed ring plus a lock-free published depth. The depth is the optimistic
// part — producers read it to pick spill targets and the watchdog reads it
// to count pending work, both tolerating staleness exactly like the
// selection phase tolerates stale load snapshots. Every synchronization
// action announces itself through the mc_hooks seam (kMailboxPush /
// kMailboxDrain / kMailboxDepth), so the model checker can interleave
// producers against the draining owner and discharge no-lost-admitted-items
// (src/mc/harness.cc, ingress mode).

#ifndef OPTSCHED_SRC_INGRESS_MAILBOX_H_
#define OPTSCHED_SRC_INGRESS_MAILBOX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/thread_annotations.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/ingress_source.h"
#include "src/runtime/spinlock.h"

namespace optsched::ingress {

using runtime::WorkItem;

class BoundedMailbox {
 public:
  explicit BoundedMailbox(uint32_t capacity);

  // Producer side (any thread). Returns false when the mailbox is full — the
  // caller's admission policy decides what happens to the item; the mailbox
  // itself never blocks and never drops silently. If `was_empty_out` is
  // non-null it receives whether the mailbox was empty BEFORE this push: the
  // empty->non-empty edge is the notification predicate (MailboxSet fires
  // its notify callback exactly on that edge, so a parked owner is woken
  // once per burst, not once per item).
  bool TryPush(const WorkItem& item, bool* was_empty_out = nullptr)
      OPTSCHED_EXCLUDES(lock_);

  // Owner side (single consumer). Moves up to `max_items` items in FIFO
  // order into `out` (appending). Returns the number moved.
  uint32_t DrainInto(std::vector<WorkItem>& out, uint32_t max_items)
      OPTSCHED_EXCLUDES(lock_);

  // Lock-free depth observation; may be stale by a concurrent push or drain
  // (same optimism as ReadLoad on a runqueue).
  int64_t ApproxDepth() const;

  uint32_t capacity() const { return capacity_; }

  // Lifetime counters. Relaxed atomics: each read is torn-free, but read
  // them as an exact set only at quiescence (after producers and the owner
  // have stopped), same contract as FaultInjector::stats().
  // order: reporting-counter
  uint64_t total_pushed() const { return pushed_.load(std::memory_order_relaxed); }
  uint64_t total_rejected_full() const {
    return rejected_full_.load(std::memory_order_relaxed);  // order: reporting-counter
  }
  // order: reporting-counter
  uint64_t total_drained() const { return drained_.load(std::memory_order_relaxed); }

 private:
  const uint32_t capacity_;

  // Lock + ring on one line group, published depth on its own line: thieves
  // of this subsystem are the spill-probing producers and the watchdog, and
  // their depth polls must not contend with the owner's drain.
  alignas(runtime::kCacheLineSize) mutable runtime::SpinLock lock_;
  std::vector<WorkItem> ring_ OPTSCHED_GUARDED_BY(lock_);  // fixed, capacity_ slots
  uint32_t head_ OPTSCHED_GUARDED_BY(lock_) = 0;
  uint32_t size_ OPTSCHED_GUARDED_BY(lock_) = 0;

  // Written only under lock_, read lock-free (ApproxDepth / PendingFor).
  // mc: kMailboxPush, kMailboxDrain, kMailboxDepth
  alignas(runtime::kCacheLineSize) std::atomic<int64_t> depth_{0};
  // optsched-lint: allow(mc-hook-coverage): reporting counter, never a scheduling decision input
  std::atomic<uint64_t> pushed_{0};
  // optsched-lint: allow(mc-hook-coverage): reporting counter, never a scheduling decision input
  std::atomic<uint64_t> rejected_full_{0};
  // optsched-lint: allow(mc-hook-coverage): reporting counter, never a scheduling decision input
  std::atomic<uint64_t> drained_{0};
};

// One BoundedMailbox per worker plus the empty->non-empty notification hook.
// Implements runtime::IngressSource, which is the only face the executor
// sees: Drain() on the owner's thread, PendingFor() on the supervisor's.
class MailboxSet : public runtime::IngressSource {
 public:
  // `notify` (optional) is invoked with the worker index after a push that
  // made that worker's mailbox non-empty. It runs on the PRODUCER's thread
  // and must be cheap and lock-free — the executor wires it to its
  // wakeup-epoch bump (Executor::NotifyIngress), never to anything that
  // could block admission behind a parked worker.
  MailboxSet(uint32_t num_workers, uint32_t capacity_per_mailbox,
             std::function<void(uint32_t)> notify = nullptr);

  uint32_t num_mailboxes() const { return static_cast<uint32_t>(mailboxes_.size()); }
  BoundedMailbox& mailbox(uint32_t worker) { return *mailboxes_[worker]; }
  const BoundedMailbox& mailbox(uint32_t worker) const { return *mailboxes_[worker]; }

  void set_notify(std::function<void(uint32_t)> notify) { notify_ = std::move(notify); }

  // Producer-side push with the notification edge applied. Returns false
  // when the target mailbox is full.
  bool Push(uint32_t worker, const WorkItem& item);

  // runtime::IngressSource:
  uint32_t Drain(uint32_t worker, std::vector<WorkItem>& out, uint32_t max_items) override;
  int64_t PendingFor(uint32_t worker) const override;

  // Sum of ApproxDepth over all mailboxes (lock-free, possibly stale).
  int64_t TotalPending() const;

 private:
  std::vector<std::unique_ptr<BoundedMailbox>> mailboxes_;
  std::function<void(uint32_t)> notify_;
};

}  // namespace optsched::ingress

#endif  // OPTSCHED_SRC_INGRESS_MAILBOX_H_
