// Deal transport: per-worker bounded mailboxes for peer-to-peer work-dealing
// (docs/runtime.md#work-dealing, docs/serving.md#deal-traffic).
//
// Same BoundedMailbox substrate as the serving front end — bounded MPSC
// ring, lock-free depth, mc-hooked push/drain — but a SEPARATE channel with
// SEPARATE accounting. Dealt traffic must never be mistaken for producer
// admission: producer items enter the executor's remaining/submitted counts
// when drained (DrainIngress), while dealt items were counted at their
// original submission and are only MIGRATING — draining them through the
// admission path would double-count them and hang (or early-terminate) the
// closed-system run. Keeping the channels apart also keeps the serving
// story honest: an E15-style report can state exactly how much mailbox
// capacity went to users versus to rebalancing.
//
// The dealer-side contract is prefix acceptance: PushDealt stops at the
// first refusal (full mailbox) and reports how many items landed; the
// dealer still owns the tail and must put it somewhere conservation-visible
// (back on its own queue, or directly into the peer's runqueue via
// PushBatchExternal). Dropping the refused tail is exactly the seeded
// `broken_deal_window` fault the mc deal harness catches.

#ifndef OPTSCHED_SRC_INGRESS_DEAL_CHANNEL_H_
#define OPTSCHED_SRC_INGRESS_DEAL_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/ingress/mailbox.h"
#include "src/runtime/ingress_source.h"

namespace optsched::ingress {

class DealChannel : public runtime::DealSink {
 public:
  // `notify` (optional) runs on the DEALER's thread after a push that made a
  // worker's deal mailbox non-empty; the executor wires it to its
  // wakeup-epoch bump so a peer entering backoff cannot park over a deal it
  // has not observed (same missed-submit protocol as producer ingress).
  DealChannel(uint32_t num_workers, uint32_t capacity_per_mailbox,
              std::function<void(uint32_t)> notify = nullptr);

  uint32_t num_mailboxes() const { return static_cast<uint32_t>(mailboxes_.size()); }
  BoundedMailbox& mailbox(uint32_t worker) { return *mailboxes_[worker]; }
  const BoundedMailbox& mailbox(uint32_t worker) const { return *mailboxes_[worker]; }

  void set_notify(std::function<void(uint32_t)> notify) { notify_ = std::move(notify); }

  // runtime::DealSink:
  uint32_t PushDealt(uint32_t worker, const runtime::WorkItem* items,
                     uint32_t count) override;
  uint32_t DrainDealt(uint32_t worker, std::vector<runtime::WorkItem>& out,
                      uint32_t max_items) override;
  int64_t DealtPendingFor(uint32_t worker) const override;

  // Sum of dealt backlog over all workers (lock-free, possibly stale).
  int64_t TotalDealtPending() const;

  // Lifetime dealt-traffic accounting, distinct from producer admission.
  // Exact at quiescence, same contract as BoundedMailbox counters.
  uint64_t total_dealt_pushed() const {
    return dealt_pushed_.load(std::memory_order_relaxed);  // order: reporting-counter
  }
  uint64_t total_dealt_rejected() const {
    return dealt_rejected_.load(std::memory_order_relaxed);  // order: reporting-counter
  }
  uint64_t total_dealt_drained() const {
    return dealt_drained_.load(std::memory_order_relaxed);  // order: reporting-counter
  }

 private:
  std::vector<std::unique_ptr<BoundedMailbox>> mailboxes_;
  std::function<void(uint32_t)> notify_;
  // optsched-lint: allow(mc-hook-coverage): reporting counter, never a scheduling decision input
  std::atomic<uint64_t> dealt_pushed_{0};
  // optsched-lint: allow(mc-hook-coverage): reporting counter, never a scheduling decision input
  std::atomic<uint64_t> dealt_rejected_{0};
  // optsched-lint: allow(mc-hook-coverage): reporting counter, never a scheduling decision input
  std::atomic<uint64_t> dealt_drained_{0};
};

}  // namespace optsched::ingress

#endif  // OPTSCHED_SRC_INGRESS_DEAL_CHANNEL_H_
