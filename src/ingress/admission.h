// Admission control for the serving front end (docs/serving.md).
//
// When a session's home mailbox is full, the shard must DECIDE — the bound
// makes "do nothing" impossible, which is the design. Three policies, the
// classic degradation triangle:
//
//   * kShed             — drop the item at the edge, count it, tell the
//                         caller. Sacrifices completeness for latency: the
//                         admitted population keeps its sojourn bounded no
//                         matter how hard the open loop pushes (E15's
//                         graceful-degradation criterion).
//   * kSpillToSibling   — try up to max_spill_hops neighbouring workers'
//                         mailboxes before shedding. Sacrifices locality
//                         (the session executes off its home worker) for
//                         admission rate; bounded hops keep the probe cost
//                         O(1), and the per-hop depth reads are the same
//                         optimistic stale-tolerant loads as SELECTION.
//   * kBlockWithDeadline — the shard itself backpressures: poll the home
//                         mailbox until space or deadline, then shed.
//                         Sacrifices producer throughput for per-session
//                         ordering and locality; the deadline keeps a stuck
//                         owner from wedging the shard forever.
//
// Shedding is always the terminal fallback: an item is either ADMITTED into
// exactly one mailbox or SHED with a counted reason — no third state, which
// is what lets the chaos test and the model checker account for every item.

#ifndef OPTSCHED_SRC_INGRESS_ADMISSION_H_
#define OPTSCHED_SRC_INGRESS_ADMISSION_H_

#include <cstdint>

namespace optsched::ingress {

enum class AdmissionPolicy {
  kShed,
  kSpillToSibling,
  kBlockWithDeadline,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);
// Parses "shed" | "spill" | "block" (benchmark flag spelling); returns
// kShed for anything unrecognized.
AdmissionPolicy AdmissionPolicyFromName(const char* name);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kShed;
  // kSpillToSibling: how many ring-order siblings to probe after the home
  // mailbox rejects. 0 degrades to kShed.
  uint32_t max_spill_hops = 2;
  // kBlockWithDeadline: total time a shard may wait for home-mailbox space
  // before shedding, and the poll cadence while waiting.
  uint64_t block_deadline_us = 1000;
  uint64_t block_poll_us = 50;
};

// What happened to one offered item.
enum class AdmitOutcome {
  kAdmittedHome,   // pushed into the session's home mailbox
  kAdmittedSpill,  // pushed into a sibling's mailbox (worker in AdmitResult)
  kShed,           // dropped by policy (full home under kShed, hops/deadline
                   // exhausted under the other two)
};

struct AdmitResult {
  AdmitOutcome outcome = AdmitOutcome::kShed;
  // The mailbox that accepted the item (home or spill target); valid unless
  // outcome == kShed.
  uint32_t worker = 0;
  // Offer-entry to decision, steady-clock ns (the admission-latency metric).
  uint64_t admit_ns = 0;
};

}  // namespace optsched::ingress

#endif  // OPTSCHED_SRC_INGRESS_ADMISSION_H_
