// Experiment E1 — Listing 2 / Lemma 1 and the §4.2 obligations.
//
// Paper claim: "In our non-concurrent setting, Leon can automatically prove
// that this property holds, even for relatively complex filter functions. For
// instance, we have found that the proof is still automatically verified for
// a load balancer that tries to balance the number of threads weighted by
// their importance."
//
// Reproduction: discharge Lemma 1 + filter-selects-overloaded + steal-safety
// + potential-decrease for the Listing-1 policy and the weighted policy over
// exhaustive bounded state spaces, reporting state counts and checking time;
// then show the obligations are discriminating by running the same battery
// on the flawed filters (group-sum, CFS-like) and printing the concrete
// counterexamples the checker extracts.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/policies/broken.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/registry.h"
#include "src/verify/lemmas.h"

namespace optsched {
namespace {

using bench::F;
using policies::GroupMap;

void RunBattery(const BalancePolicy& policy, uint32_t cores, int64_t max_load,
                std::vector<std::vector<std::string>>& rows) {
  verify::Bounds bounds;
  bounds.num_cores = cores;
  bounds.max_load = max_load;
  const bench::Timer timer;
  const auto lemma1 = verify::CheckLemma1(policy, bounds);
  const auto overloaded = verify::CheckFilterSelectsOverloaded(policy, bounds);
  const auto safety = verify::CheckStealSafety(policy, bounds);
  const auto potential = verify::CheckPotentialDecrease(policy, bounds);
  const double ms = timer.ElapsedMs();
  const uint64_t checks = lemma1.checks_performed + overloaded.checks_performed +
                          safety.checks_performed + potential.checks_performed;
  auto verdict = [](const verify::CheckResult& r) { return r.holds ? "holds" : "VIOLATED"; };
  rows.push_back({policy.name(), F("%u", cores), F("%lld", static_cast<long long>(max_load)),
                  F("%llu", static_cast<unsigned long long>(lemma1.states_checked)),
                  F("%llu", static_cast<unsigned long long>(checks)), verdict(lemma1),
                  verdict(overloaded), verdict(safety), verdict(potential), F("%.1f", ms)});
}

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  bench::Section("E1: Lemma 1 and the sequential proof obligations (paper Listing 2, 4.2)");

  std::vector<std::vector<std::string>> rows;
  const Topology topo_smp = Topology::Smp(4);
  for (const char* name : {"thread-count", "weighted-load"}) {
    const auto policy = policies::MakePolicyByName(name, topo_smp);
    for (uint32_t cores : {2u, 3u, 4u, 5u, 6u}) {
      RunBattery(*policy, cores, /*max_load=*/4, rows);
    }
    RunBattery(*policy, 4, /*max_load=*/8, rows);
  }
  bench::PrintTable({"policy", "cores", "max_load", "states", "checks", "lemma1",
                     "only_overloaded", "steal_safety", "potential_dec", "ms"},
                    rows);

  bench::Section("E1b: the obligations are discriminating (flawed filters)");
  std::vector<std::vector<std::string>> bad_rows;
  RunBattery(*policies::MakeBrokenCanSteal(), 3, 4, bad_rows);
  RunBattery(*policies::MakeGroupSum(GroupMap::Contiguous(4, 2)), 4, 4, bad_rows);
  RunBattery(*policies::MakeCfsLike(GroupMap::Contiguous(4, 2)), 4, 4, bad_rows);
  bench::PrintTable({"policy", "cores", "max_load", "states", "checks", "lemma1",
                     "only_overloaded", "steal_safety", "potential_dec", "ms"},
                    bad_rows);

  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 4;
  const auto group_sum_result =
      verify::CheckLemma1(*policies::MakeGroupSum(GroupMap::Contiguous(4, 2)), bounds);
  bench::Note("group-sum Lemma-1 counterexample: " +
              (group_sum_result.counterexample.has_value()
                   ? group_sum_result.counterexample->ToString()
                   : std::string("<none>")));
  bounds.num_cores = 3;
  const auto broken_potential =
      verify::CheckPotentialDecrease(*policies::MakeBrokenCanSteal(), bounds);
  bench::Note("broken-cansteal potential counterexample: " +
              (broken_potential.counterexample.has_value()
                   ? broken_potential.counterexample->ToString()
                   : std::string("<none>")));
  bench::Note("\nExpected shape (paper): Lemma 1 holds automatically for the simple and the\n"
              "weighted balancer; checking stays fast at paper-scale bounds; flawed filters\n"
              "are rejected with concrete counterexamples.");
  return 0;
}
