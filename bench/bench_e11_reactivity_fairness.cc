// Experiment E11 (extension) — reactivity and fairness.
//
// Paper §1: "no general-purpose operating system is proven to be
// work-conserving, fair between threads, or reactive (i.e., to have a bound
// on the delay to schedule ready threads)". The paper only attacks work
// conservation; this experiment measures the other two properties on the same
// substrate, as groundwork for extending the proof machinery:
//
//  * Reactivity: distribution of ready->running delay per policy. A
//    work-conserving balancer bounds the tail by the balancing period as
//    long as idle capacity exists; the CFS-like baseline's tail stretches by
//    however long its heuristics starve an idle core.
//  * Fairness: Jain index of (CPU time / weight) across equally-entitled and
//    mixed-niceness competitors under the weighted policy.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"

namespace optsched {
namespace {

using bench::F;
using policies::GroupMap;

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  const Topology topo = Topology::Numa(2, 8);

  bench::Section("E11a: reactivity — ready->running delay under churn (16 cores)");
  {
    std::vector<std::vector<std::string>> rows;
    struct Entry {
      std::string label;
      std::shared_ptr<const BalancePolicy> policy;
    };
    const Entry entries[] = {
        {"thread-count (proven)", policies::MakeThreadCount()},
        {"hierarchical (proven)", policies::MakeHierarchical(GroupMap::ByNode(topo))},
        {"cfs-like", policies::MakeCfsLike(GroupMap::ByNode(topo))},
    };
    for (const Entry& entry : entries) {
      sim::SimConfig config;
      config.max_time_us = 4'000'000;
      config.lb_period_us = 4'000;
      config.wake_placement = sim::WakePlacement::kLastCpu;  // stress the balancer
      sim::Simulator s(topo, entry.policy, config, 77);
      // Blocking workers homed on node 0 (wakeups concentrate there), light
      // total load so idle capacity always exists: any waiting is the
      // balancer's fault, not capacity.
      for (int i = 0; i < 12; ++i) {
        sim::TaskSpec spec;
        spec.total_service_us = 2'000'000;
        spec.burst_us = 3'000;
        spec.mean_block_us = 2'000;
        spec.home_node = 0;
        s.Submit(spec, 0, /*cpu_hint=*/static_cast<CpuId>(i % 4));  // 3 per cpu on 4 cpus
      }
      s.RunUntil(config.max_time_us);
      const stats::Summary& lat = s.metrics().ready_to_run_latency_us;
      const stats::LogHistogram& hist = s.metrics().ready_to_run_hist_us;
      rows.push_back({entry.label, F("%llu", static_cast<unsigned long long>(lat.count())),
                      F("%.0f", lat.mean()), F("%.0f", hist.Percentile(0.99)),
                      F("%.0f", lat.max()),
                      F("%.2f%%", s.accounting().wasted_fraction() * 100.0)});
    }
    bench::PrintTable({"policy", "dispatches", "mean ready->run (us)", "p99 (us)", "max (us)",
                       "wasted_time"},
                      rows);
    bench::Note(F("(balancing period is %dus: a work-conserving policy's tail is bounded by\n"
                  " ~one period plus queueing behind same-core predecessors)",
                  4000));
  }

  bench::Section("E11b: fairness — equal-entitlement competitors (Jain index)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [label, policy] :
         {std::pair<std::string, std::shared_ptr<const BalancePolicy>>{
              "thread-count", policies::MakeThreadCount()},
          {"weighted-load", policies::MakeWeightedLoad()},
          {"cfs-like", policies::MakeCfsLike(GroupMap::ByNode(topo))}}) {
      sim::SimConfig config;
      config.max_time_us = 500'000;
      config.timeslice_us = 4'000;
      config.lb_period_us = 4'000;
      config.wake_placement = sim::WakePlacement::kLastCpu;
      sim::Simulator s(topo, policy, config, 78);
      // 32 identical CPU-bound tasks on 16 cores, all born on cpu0: after
      // spreading, each should receive ~the same CPU time.
      for (int i = 0; i < 32; ++i) {
        sim::TaskSpec spec;
        spec.total_service_us = 10'000'000;  // never finishes inside the run
        s.Submit(spec, 0, 0);
      }
      s.RunUntil(config.max_time_us);
      std::vector<double> shares;
      for (const auto& [id, consumed] : s.AllConsumedService()) {
        shares.push_back(static_cast<double>(consumed));
      }
      rows.push_back({label, F("%.4f", stats::JainFairnessIndex(shares)),
                      F("%.1f%%", s.accounting().utilization() * 100.0)});
    }
    bench::PrintTable({"policy", "Jain index (1.0 = perfectly fair)", "utilization"}, rows);
  }

  bench::Section("E11c: weighted fairness — mixed niceness, share per unit weight");
  {
    // Two layers compose here: the weighted *balancer* equalizes queue weight
    // across cores, and the weighted *timeslice* divides time by weight
    // within a core. The target CPU-time ratio for nice 0 vs nice +5 is
    // 1024/335 = 3.06.
    std::vector<std::vector<std::string>> rows;
    struct Variant {
      const char* label;
      bool weighted_slice;
      sim::PickNext pick_next;
    };
    const Variant variants[] = {
        {"weighted balancer + plain round-robin", false, sim::PickNext::kFifo},
        {"weighted balancer + weighted timeslice", true, sim::PickNext::kFifo},
        {"weighted balancer + min-vruntime pick", false, sim::PickNext::kMinVruntime},
    };
    for (const Variant& variant : variants) {
      sim::SimConfig config;
      config.max_time_us = 500'000;
      config.timeslice_us = 4'000;
      config.weighted_timeslice = variant.weighted_slice;
      config.pick_next = variant.pick_next;
      config.lb_period_us = 4'000;
      config.wake_placement = sim::WakePlacement::kLastCpu;
      sim::Simulator s(topo, policies::MakeWeightedLoad(), config, 79);
      // 16 nice 0 + 16 nice +5 CPU-bound tasks on 16 cores, all born on cpu0.
      std::vector<TaskId> heavy_ids;
      std::vector<TaskId> light_ids;
      for (int i = 0; i < 16; ++i) {
        sim::TaskSpec heavy;
        heavy.nice = 0;
        heavy.total_service_us = 10'000'000;
        heavy_ids.push_back(s.Submit(heavy, 0, 0));
        sim::TaskSpec light;
        light.nice = 5;
        light.total_service_us = 10'000'000;
        light_ids.push_back(s.Submit(light, 0, 0));
      }
      s.RunUntil(config.max_time_us);
      auto mean_consumed = [&](const std::vector<TaskId>& ids) {
        double total = 0.0;
        for (TaskId id : ids) {
          total += static_cast<double>(s.ConsumedServiceUs(id));
        }
        return total / static_cast<double>(ids.size());
      };
      const double heavy_mean = mean_consumed(heavy_ids);
      const double light_mean = mean_consumed(light_ids);
      std::vector<double> normalized;
      for (TaskId id : heavy_ids) {
        normalized.push_back(static_cast<double>(s.ConsumedServiceUs(id)) / NiceToWeight(0));
      }
      for (TaskId id : light_ids) {
        normalized.push_back(static_cast<double>(s.ConsumedServiceUs(id)) / NiceToWeight(5));
      }
      rows.push_back({variant.label, F("%.0f", heavy_mean), F("%.0f", light_mean),
                      F("%.2f", heavy_mean / std::max(1.0, light_mean)),
                      F("%.4f", stats::JainFairnessIndex(normalized))});
    }
    bench::PrintTable({"configuration", "mean us (nice 0)", "mean us (nice +5)",
                       "ratio (target 3.06)", "Jain over time/weight"},
                      rows);
  }

  bench::Note("\nExpected shape: proven policies keep ready->run delay bounded near the\n"
              "balancing period and equal competitors near Jain=1; the CFS-like baseline\n"
              "shows a longer starvation tail. Weighted balancing alone spreads queue\n"
              "weight; composing it with weighted timeslicing yields per-thread CPU time\n"
              "proportional to weight (the paper's 'fair between threads' direction).");
  return 0;
}
