// Experiment E8 — balancing thread counts weighted by importance (§3.1/§4.2).
//
// Paper claim: the proof machinery extends unchanged to "a load balancer that
// tries to balance the number of threads weighted by their importance".
//
// Reproduction: (a) the full audit for the weighted policy at several bounds;
// (b) convergence of weighted imbalance on machines with mixed niceness; (c) a
// simulator run showing CPU time received scales with weight once balanced.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/conservation.h"
#include "src/core/policies/weighted.h"
#include "src/stats/summary.h"
#include "src/sim/simulator.h"
#include "src/verify/audit.h"

namespace optsched {
namespace {

using bench::F;

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;

  bench::Section("E8a: weighted-load policy audit across bounds");
  {
    std::vector<std::vector<std::string>> rows;
    const auto policy = policies::MakeWeightedLoad();
    for (const auto& [cores, max_load] :
         {std::pair<uint32_t, int64_t>{3, 3}, {3, 4}, {4, 3}}) {
      verify::ConvergenceCheckOptions options;
      options.bounds.num_cores = cores;
      options.bounds.max_load = max_load;
      const bench::Timer timer;
      const auto audit = verify::AuditPolicy(*policy, options);
      rows.push_back({F("%u", cores), F("%lld", static_cast<long long>(max_load)),
                      audit.lemma1.holds ? "holds" : "VIOLATED",
                      audit.steal_safety.holds ? "holds" : "VIOLATED",
                      audit.potential_decrease.holds ? "holds" : "VIOLATED",
                      audit.concurrent.result.holds ? "holds" : "VIOLATED",
                      audit.work_conserving() ? "WORK-CONSERVING" : "REJECTED",
                      F("%.0f", timer.ElapsedMs())});
    }
    bench::PrintTable({"cores", "max_load", "lemma1", "steal_safety", "potential_dec",
                       "AF(WC)", "verdict", "audit_ms"},
                      rows);
  }

  bench::Section("E8b: weighted imbalance convergence, mixed niceness (100 random starts)");
  {
    std::vector<std::vector<std::string>> rows;
    const auto policy = policies::MakeWeightedLoad();
    for (uint32_t cores : {4u, 8u, 16u}) {
      Rng rng(41 + cores);
      stats::Summary rounds_summary;
      stats::Summary imbalance_before;
      stats::Summary imbalance_after;
      stats::Summary stealable_gap_over_wmax;
      for (int trial = 0; trial < 100; ++trial) {
        // Mixed-niceness tasks piled on a third of the cores.
        MachineState machine(cores);
        const int tasks = static_cast<int>(rng.NextInRange(cores, 3 * cores));
        uint32_t max_weight = 1;
        for (int t = 0; t < tasks; ++t) {
          const int nice = static_cast<int>(rng.NextInRange(-10, 10));
          max_weight = std::max(max_weight, NiceToWeight(nice));
          machine.Spawn(static_cast<CpuId>(rng.NextBelow(std::max(1u, cores / 3))), nice);
        }
        machine.ScheduleAll();
        const int64_t d0 = machine.Potential(LoadMetric::kWeightedLoad);
        imbalance_before.Add(static_cast<double>(d0));
        LoadBalancer balancer(policy);
        const uint64_t rounds = RunUntilQuiescent(balancer, machine, rng, {}, 500);
        rounds_summary.Add(static_cast<double>(rounds));
        imbalance_after.Add(static_cast<double>(machine.Potential(LoadMetric::kWeightedLoad)));
        // The quiescence guarantee: for every pair whose victim still has >=2
        // tasks (i.e. could in principle give one away), the weighted gap is
        // bounded by the heaviest single task (a single thread cannot be
        // split, so single-task cores are legitimately lopsided).
        int64_t worst_gap = 0;
        for (CpuId v = 0; v < cores; ++v) {
          if (machine.core(v).TaskCount() < 2) {
            continue;
          }
          for (CpuId t = 0; t < cores; ++t) {
            if (t != v) {
              worst_gap = std::max(worst_gap,
                                   machine.Load(v, LoadMetric::kWeightedLoad) -
                                       machine.Load(t, LoadMetric::kWeightedLoad));
            }
          }
        }
        stealable_gap_over_wmax.Add(static_cast<double>(worst_gap) /
                                    static_cast<double>(max_weight));
      }
      rows.push_back({F("%u", cores), F("%.0f", imbalance_before.mean()),
                      F("%.0f", imbalance_after.mean()),
                      F("%.2f", stealable_gap_over_wmax.mean()),
                      F("%.2f", stealable_gap_over_wmax.max()),
                      F("%.1f", rounds_summary.mean())});
    }
    bench::PrintTable({"cores", "weighted d before", "weighted d after",
                       "stealable-pair gap / max task weight (mean)", "(worst)",
                       "mean rounds to quiesce"},
                      rows);
    bench::Note("(residual total d stays positive because a single heavy thread cannot be\n"
                " split across cores; the guarantee is per stealable pair: gap <= heaviest\n"
                " task weight, i.e. the ratio column stays <= 1)");
  }

  bench::Section("E8c: simulator, CPU time by niceness class after weighted balancing");
  {
    const Topology topo = Topology::Smp(8);
    sim::SimConfig config;
    config.max_time_us = 400'000;
    config.lb_period_us = 2'000;
    config.wake_placement = sim::WakePlacement::kLastCpu;
    sim::Simulator s(topo, policies::MakeWeightedLoad(), config, 51);
    // 8 nice -5 tasks and 8 nice +5 tasks, all born on cpu0, CPU-bound and
    // longer than the run: the question is how evenly weight spreads.
    for (int i = 0; i < 8; ++i) {
      sim::TaskSpec heavy;
      heavy.nice = -5;
      heavy.total_service_us = 10'000'000;
      s.Submit(heavy, 0, 0);
      sim::TaskSpec light;
      light.nice = 5;
      light.total_service_us = 10'000'000;
      s.Submit(light, 0, 0);
    }
    s.RunUntil(config.max_time_us);
    // Final per-core weighted load spread.
    int64_t min_load = INT64_MAX;
    int64_t max_load = 0;
    for (CpuId cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      const int64_t l = s.machine().Load(cpu, LoadMetric::kWeightedLoad);
      min_load = std::min(min_load, l);
      max_load = std::max(max_load, l);
    }
    bench::Note(F("final weighted load spread across 8 cpus: min=%lld max=%lld (nice-5 "
                  "weight=%u, nice+5 weight=%u)",
                  static_cast<long long>(min_load), static_cast<long long>(max_load),
                  NiceToWeight(-5), NiceToWeight(5)));
    bench::Note(F("migrations=%llu failed_steals=%llu wasted=%.2f%%",
                  static_cast<unsigned long long>(s.metrics().migrations),
                  static_cast<unsigned long long>(s.metrics().failed_steals),
                  s.accounting().wasted_fraction() * 100.0));
  }

  bench::Note("\nExpected shape (paper): all obligations hold for the weighted balancer with\n"
              "no extra proof effort; at quiescence every pair that could still exchange a\n"
              "task is within one task-weight of balance.");
  return 0;
}
