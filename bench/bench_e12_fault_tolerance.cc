// Experiment E12 — fault tolerance: graceful degradation of the optimistic
// protocol under injected faults (docs/robustness.md).
//
// The paper's resilience claim is qualitative: transient failures (stale
// snapshots, lost re-checks, missed rounds) are legitimate and only
// persistent idleness violates work conservation. This experiment makes the
// claim quantitative by sweeping a chaos level x in [0, 0.9] — applied as the
// rate of every model-level seam fault (straggler, steal abort, stale
// snapshot, dropped round) — and measuring:
//
//   E12a (model):  convergence rounds N until work conservation, averaged and
//                  worst-cased over imbalanced start states. Expectation: N
//                  grows smoothly (roughly like 1/(1-x) — each round does a
//                  fraction of its fault-free work), with no cliff and no
//                  divergence while x < 1.
//   E12b (sim):    wasted-core time fraction and watchdog verdicts for a
//                  static-imbalance workload. Expectation: waste rises with
//                  x but persistent violations stay at zero — the watchdog's
//                  escalation path keeps starvation transient by forcing a
//                  fault-free sequential round.
//
// A machine-readable JSON sweep is printed at the end for plotting.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/thread_count.h"
#include "src/fault/fault.h"
#include "src/sched/machine_state.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

using bench::F;

constexpr uint32_t kCores = 8;
constexpr uint64_t kMaxRounds = 4096;

fault::FaultPlan PlanAt(double level, uint64_t seed) {
  fault::FaultPlan plan;
  plan.straggler_rate = level;
  plan.steal_abort_rate = level;
  plan.stale_snapshot_rate = level;
  plan.drop_round_rate = level;
  plan.seed = seed;
  return plan;
}

struct ModelPoint {
  double level = 0.0;
  double mean_rounds = 0.0;
  uint64_t worst_rounds = 0;
  uint64_t diverged = 0;  // start states that missed the round budget
  uint64_t injected = 0;
};

ModelPoint ModelSweepPoint(double level) {
  ModelPoint point;
  point.level = level;
  const std::vector<std::vector<int64_t>> starts = {
      {16, 0, 0, 0, 0, 0, 0, 0}, {8, 8, 0, 0, 0, 0, 0, 0},  {12, 6, 3, 1, 0, 0, 0, 0},
      {5, 5, 5, 5, 0, 0, 0, 0},  {20, 1, 1, 1, 1, 0, 0, 0}, {7, 0, 6, 0, 5, 0, 4, 0},
  };
  uint64_t total_rounds = 0;
  uint64_t runs = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    fault::FaultInjector injector(PlanAt(level, seed), kCores);
    LoadBalancer balancer(policies::MakeThreadCount());
    balancer.set_fault_injector(&injector);
    for (const auto& start : starts) {
      MachineState machine = MachineState::FromLoads(start);
      Rng rng(seed * 1000 + 7);
      ConvergenceOptions options;
      options.max_rounds = kMaxRounds;
      const ConvergenceResult result = RunUntilWorkConserved(balancer, machine, rng, options);
      if (!result.converged) {
        ++point.diverged;
      } else {
        total_rounds += result.rounds;
        point.worst_rounds = std::max(point.worst_rounds, result.rounds);
        ++runs;
      }
    }
    point.injected += injector.stats().total();
  }
  point.mean_rounds = runs == 0 ? 0.0 : static_cast<double>(total_rounds) / runs;
  return point;
}

struct SimPoint {
  double level = 0.0;
  double wasted_frac = 0.0;
  double makespan_ms = 0.0;
  uint64_t escalations = 0;
  uint64_t transient = 0;
  uint64_t persistent = 0;
};

SimPoint SimSweepPoint(double level) {
  SimPoint point;
  point.level = level;
  const Topology topo = Topology::Smp(kCores);
  sim::SimConfig config;
  config.fault_plan = PlanAt(level, /*seed=*/97);
  config.watchdog = true;
  config.watchdog_threshold_rounds = 64;
  config.max_time_us = 3'000'000'000;
  sim::Simulator simulator(topo, policies::MakeThreadCount(), config, /*seed=*/97);
  workload::SubmitStaticImbalance(
      simulator,
      workload::StaticImbalanceConfig{.num_tasks = 64, .service_us = 20'000, .initial_cpus = 1});
  simulator.Run();
  point.wasted_frac = simulator.accounting().wasted_fraction();
  point.makespan_ms = static_cast<double>(simulator.metrics().makespan_us) / 1000.0;
  point.escalations = simulator.metrics().watchdog_escalations;
  point.transient = simulator.watchdog_stats().transient_violations;
  point.persistent = simulator.watchdog_stats().persistent_violations;
  return point;
}

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  const std::vector<double> levels = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

  bench::Section(F("E12a: model-level convergence rounds vs fault rate (%u cores, "
                   "6 start states x 8 seeds, budget %llu rounds)",
                   kCores, static_cast<unsigned long long>(kMaxRounds)));
  std::vector<ModelPoint> model;
  {
    std::vector<std::vector<std::string>> rows;
    for (double level : levels) {
      const ModelPoint p = ModelSweepPoint(level);
      model.push_back(p);
      rows.push_back({F("%.1f", p.level), F("%.1f", p.mean_rounds),
                      F("%llu", static_cast<unsigned long long>(p.worst_rounds)),
                      F("%llu", static_cast<unsigned long long>(p.diverged)),
                      F("%llu", static_cast<unsigned long long>(p.injected))});
    }
    bench::PrintTable({"fault rate", "mean N", "worst N", "diverged", "faults injected"}, rows);
    bench::Note(
        "Graceful degradation: N grows smoothly (roughly geometrically) with the fault rate, "
        "with no cliff. 'diverged' counts runs that missed the fixed round budget, not true "
        "divergence: at 0.9 every seam loses 90% of its work, so the expected N crosses the "
        "4096-round budget; any rate < 1.0 still converges with probability 1.");
  }

  bench::Section("E12b: simulator wasted-core fraction vs fault rate (static imbalance, "
                 "watchdog on, threshold 64 rounds)");
  std::vector<SimPoint> sim_points;
  {
    std::vector<std::vector<std::string>> rows;
    for (double level : levels) {
      const SimPoint p = SimSweepPoint(level);
      sim_points.push_back(p);
      rows.push_back({F("%.1f", p.level), F("%.2f%%", p.wasted_frac * 100.0),
                      F("%.1f", p.makespan_ms),
                      F("%llu", static_cast<unsigned long long>(p.transient)),
                      F("%llu", static_cast<unsigned long long>(p.persistent)),
                      F("%llu", static_cast<unsigned long long>(p.escalations))});
    }
    bench::PrintTable(
        {"fault rate", "wasted time", "makespan ms", "transient", "persistent", "escalations"},
        rows);
    bench::Note(
        "Wasted-core time rises with the fault rate while violations stay transient at "
        "moderate rates. At extreme rates (>= 0.7) streaks do cross the threshold — and each "
        "crossing triggers an escalation (a forced fault-free sequential round) that breaks "
        "the streak, so starvation never becomes permanent.");
  }

  // Machine-readable sweep for plotting.
  bench::Section("E12 JSON");
  std::printf("{\"experiment\":\"e12_fault_tolerance\",\"cores\":%u,\"model\":[", kCores);
  for (size_t i = 0; i < model.size(); ++i) {
    const ModelPoint& p = model[i];
    std::printf("%s{\"rate\":%.2f,\"mean_rounds\":%.2f,\"worst_rounds\":%llu,"
                "\"diverged\":%llu,\"injected\":%llu}",
                i == 0 ? "" : ",", p.level, p.mean_rounds,
                static_cast<unsigned long long>(p.worst_rounds),
                static_cast<unsigned long long>(p.diverged),
                static_cast<unsigned long long>(p.injected));
  }
  std::printf("],\"sim\":[");
  for (size_t i = 0; i < sim_points.size(); ++i) {
    const SimPoint& p = sim_points[i];
    std::printf("%s{\"rate\":%.2f,\"wasted_frac\":%.4f,\"makespan_ms\":%.1f,"
                "\"transient\":%llu,\"persistent\":%llu,\"escalations\":%llu}",
                i == 0 ? "" : ",", p.level, p.wasted_frac, p.makespan_ms,
                static_cast<unsigned long long>(p.transient),
                static_cast<unsigned long long>(p.persistent),
                static_cast<unsigned long long>(p.escalations));
  }
  std::printf("]}\n");
  return 0;
}
