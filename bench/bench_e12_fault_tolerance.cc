// Experiment E12 — fault tolerance: graceful degradation of the optimistic
// protocol under injected faults (docs/robustness.md).
//
// The paper's resilience claim is qualitative: transient failures (stale
// snapshots, lost re-checks, missed rounds) are legitimate and only
// persistent idleness violates work conservation. This experiment makes the
// claim quantitative by sweeping a chaos level x in [0, 0.9] — applied as the
// rate of every model-level seam fault (straggler, steal abort, stale
// snapshot, dropped round) — and measuring:
//
//   E12a (model):  convergence rounds N until work conservation, averaged and
//                  worst-cased over imbalanced start states. Expectation: N
//                  grows smoothly (roughly like 1/(1-x) — each round does a
//                  fraction of its fault-free work), with no cliff and no
//                  divergence while x < 1.
//   E12b (sim):    wasted-core time fraction and watchdog verdicts for a
//                  static-imbalance workload. Expectation: waste rises with
//                  x but persistent violations stay at zero — the watchdog's
//                  escalation path keeps starvation transient by forcing a
//                  fault-free sequential round.
//   E12c (threads): the real-thread executor under crash-and-restart chaos
//                  with the watchdog and the SPSC trace rings on. All items
//                  drain despite crashes, and the merged trace attributes
//                  every steal outcome, backoff park, watchdog verdict and
//                  crash/restart to its worker. `--trace-out=PATH` writes the
//                  chaos run's Chrome trace-event JSON (chrome://tracing).
//
// A machine-readable JSON sweep is printed at the end for plotting.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/thread_count.h"
#include "src/fault/fault.h"
#include "src/runtime/executor.h"
#include "src/sched/machine_state.h"
#include "src/sim/simulator.h"
#include "src/trace/chrome_trace.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

using bench::F;

constexpr uint32_t kCores = 8;
constexpr uint64_t kMaxRounds = 4096;

fault::FaultPlan PlanAt(double level, uint64_t seed) {
  fault::FaultPlan plan;
  plan.straggler_rate = level;
  plan.steal_abort_rate = level;
  plan.stale_snapshot_rate = level;
  plan.drop_round_rate = level;
  plan.seed = seed;
  return plan;
}

struct ModelPoint {
  double level = 0.0;
  double mean_rounds = 0.0;
  uint64_t worst_rounds = 0;
  uint64_t diverged = 0;  // start states that missed the round budget
  uint64_t injected = 0;
};

ModelPoint ModelSweepPoint(double level) {
  ModelPoint point;
  point.level = level;
  const std::vector<std::vector<int64_t>> starts = {
      {16, 0, 0, 0, 0, 0, 0, 0}, {8, 8, 0, 0, 0, 0, 0, 0},  {12, 6, 3, 1, 0, 0, 0, 0},
      {5, 5, 5, 5, 0, 0, 0, 0},  {20, 1, 1, 1, 1, 0, 0, 0}, {7, 0, 6, 0, 5, 0, 4, 0},
  };
  uint64_t total_rounds = 0;
  uint64_t runs = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    fault::FaultInjector injector(PlanAt(level, seed), kCores);
    LoadBalancer balancer(policies::MakeThreadCount());
    balancer.set_fault_injector(&injector);
    for (const auto& start : starts) {
      MachineState machine = MachineState::FromLoads(start);
      Rng rng(seed * 1000 + 7);
      ConvergenceOptions options;
      options.max_rounds = kMaxRounds;
      const ConvergenceResult result = RunUntilWorkConserved(balancer, machine, rng, options);
      if (!result.converged) {
        ++point.diverged;
      } else {
        total_rounds += result.rounds;
        point.worst_rounds = std::max(point.worst_rounds, result.rounds);
        ++runs;
      }
    }
    point.injected += injector.stats().total();
  }
  point.mean_rounds = runs == 0 ? 0.0 : static_cast<double>(total_rounds) / runs;
  return point;
}

struct SimPoint {
  double level = 0.0;
  double wasted_frac = 0.0;
  double makespan_ms = 0.0;
  uint64_t escalations = 0;
  uint64_t transient = 0;
  uint64_t persistent = 0;
};

SimPoint SimSweepPoint(double level) {
  SimPoint point;
  point.level = level;
  const Topology topo = Topology::Smp(kCores);
  sim::SimConfig config;
  config.fault_plan = PlanAt(level, /*seed=*/97);
  config.watchdog = true;
  config.watchdog_threshold_rounds = 64;
  config.max_time_us = 3'000'000'000;
  sim::Simulator simulator(topo, policies::MakeThreadCount(), config, /*seed=*/97);
  workload::SubmitStaticImbalance(
      simulator,
      workload::StaticImbalanceConfig{.num_tasks = 64, .service_us = 20'000, .initial_cpus = 1});
  simulator.Run();
  point.wasted_frac = simulator.accounting().wasted_fraction();
  point.makespan_ms = static_cast<double>(simulator.metrics().makespan_us) / 1000.0;
  point.escalations = simulator.metrics().watchdog_escalations;
  point.transient = simulator.watchdog_stats().transient_violations;
  point.persistent = simulator.watchdog_stats().persistent_violations;
  return point;
}

struct ExecPoint {
  double crash_rate = 0.0;
  double throughput = 0.0;  // items/ms
  uint64_t crashes = 0;
  uint64_t escalations = 0;
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;
};

ExecPoint ExecSweepPoint(double crash_rate, runtime::ExecutorReport* report_out) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 150;
  config.seed = 12;
  config.fault_plan.steal_abort_rate = crash_rate > 0 ? 0.2 : 0.0;
  config.fault_plan.crash_rate = crash_rate;
  config.fault_plan.crash_restart_us = 100;
  config.fault_plan.seed = 12;
  config.watchdog = true;
  config.supervisor_poll_us = 50;
  config.trace_ring_capacity = 1 << 14;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  std::vector<runtime::WorkItem> items;
  for (uint64_t i = 0; i < 800; ++i) {
    items.push_back(runtime::WorkItem{.id = i, .work_units = 1200, .weight = 1024});
  }
  executor.Seed(0, items);
  runtime::ExecutorReport report = executor.Run();
  ExecPoint point;
  point.crash_rate = crash_rate;
  point.throughput = report.throughput_items_per_ms();
  point.crashes = report.faults.crashes;
  point.escalations = report.watchdog.escalations;
  point.trace_events = report.trace_events.size();
  point.trace_dropped = report.trace_dropped;
  if (report_out != nullptr) {
    *report_out = std::move(report);
  }
  return point;
}

}  // namespace
}  // namespace optsched

int main(int argc, char** argv) {
  using namespace optsched;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    }
  }
  const std::vector<double> levels = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

  bench::Section(F("E12a: model-level convergence rounds vs fault rate (%u cores, "
                   "6 start states x 8 seeds, budget %llu rounds)",
                   kCores, static_cast<unsigned long long>(kMaxRounds)));
  std::vector<ModelPoint> model;
  {
    std::vector<std::vector<std::string>> rows;
    for (double level : levels) {
      const ModelPoint p = ModelSweepPoint(level);
      model.push_back(p);
      rows.push_back({F("%.1f", p.level), F("%.1f", p.mean_rounds),
                      F("%llu", static_cast<unsigned long long>(p.worst_rounds)),
                      F("%llu", static_cast<unsigned long long>(p.diverged)),
                      F("%llu", static_cast<unsigned long long>(p.injected))});
    }
    bench::PrintTable({"fault rate", "mean N", "worst N", "diverged", "faults injected"}, rows);
    bench::Note(
        "Graceful degradation: N grows smoothly (roughly geometrically) with the fault rate, "
        "with no cliff. 'diverged' counts runs that missed the fixed round budget, not true "
        "divergence: at 0.9 every seam loses 90% of its work, so the expected N crosses the "
        "4096-round budget; any rate < 1.0 still converges with probability 1.");
  }

  bench::Section("E12b: simulator wasted-core fraction vs fault rate (static imbalance, "
                 "watchdog on, threshold 64 rounds)");
  std::vector<SimPoint> sim_points;
  {
    std::vector<std::vector<std::string>> rows;
    for (double level : levels) {
      const SimPoint p = SimSweepPoint(level);
      sim_points.push_back(p);
      rows.push_back({F("%.1f", p.level), F("%.2f%%", p.wasted_frac * 100.0),
                      F("%.1f", p.makespan_ms),
                      F("%llu", static_cast<unsigned long long>(p.transient)),
                      F("%llu", static_cast<unsigned long long>(p.persistent)),
                      F("%llu", static_cast<unsigned long long>(p.escalations))});
    }
    bench::PrintTable(
        {"fault rate", "wasted time", "makespan ms", "transient", "persistent", "escalations"},
        rows);
    bench::Note(
        "Wasted-core time rises with the fault rate while violations stay transient at "
        "moderate rates. At extreme rates (>= 0.7) streaks do cross the threshold — and each "
        "crossing triggers an escalation (a forced fault-free sequential round) that breaks "
        "the streak, so starvation never becomes permanent.");
  }

  bench::Section("E12c: real-thread executor under crash chaos (4 workers, watchdog on, "
                 "SPSC trace rings on, 800 items)");
  std::vector<ExecPoint> exec_points;
  {
    const std::vector<double> crash_rates = {0.0, 0.005, 0.01, 0.02};
    std::vector<std::vector<std::string>> rows;
    for (double rate : crash_rates) {
      const bool last = rate == crash_rates.back();
      runtime::ExecutorReport report;
      const ExecPoint p = ExecSweepPoint(rate, last && !trace_out.empty() ? &report : nullptr);
      exec_points.push_back(p);
      rows.push_back({F("%.3f", p.crash_rate), F("%.1f", p.throughput),
                      F("%llu", static_cast<unsigned long long>(p.crashes)),
                      F("%llu", static_cast<unsigned long long>(p.escalations)),
                      F("%llu", static_cast<unsigned long long>(p.trace_events)),
                      F("%llu", static_cast<unsigned long long>(p.trace_dropped))});
      if (last && !trace_out.empty()) {
        std::vector<std::string> lanes;
        for (uint32_t w = 0; w < 4; ++w) {
          lanes.push_back("worker " + std::to_string(w));
        }
        lanes.push_back("supervisor");
        const std::string json =
            trace::ToChromeTraceJson(report.trace_events, report.trace_dropped, lanes);
        if (trace::WriteStringToFile(trace_out, json)) {
          std::printf("chaos trace (%zu events, %llu dropped) -> %s\n",
                      report.trace_events.size(),
                      static_cast<unsigned long long>(report.trace_dropped),
                      trace_out.c_str());
        } else {
          std::fprintf(stderr, "failed to write trace to '%s'\n", trace_out.c_str());
          return 1;
        }
      }
    }
    bench::PrintTable({"crash rate", "items/ms", "crashes", "escalations", "trace events",
                       "trace dropped"},
                      rows);
    bench::Note(
        "No item is lost to a crash (the report asserts the drain internally) and throughput "
        "degrades smoothly with the crash rate. The trace rings record every steal outcome, "
        "backoff park, watchdog verdict and crash/restart without adding a lock to the "
        "selection fast path; full rings drop events and say so instead of blocking.");
  }

  // Machine-readable sweep for plotting.
  bench::Section("E12 JSON");
  std::printf("{\"experiment\":\"e12_fault_tolerance\",\"cores\":%u,\"model\":[", kCores);
  for (size_t i = 0; i < model.size(); ++i) {
    const ModelPoint& p = model[i];
    std::printf("%s{\"rate\":%.2f,\"mean_rounds\":%.2f,\"worst_rounds\":%llu,"
                "\"diverged\":%llu,\"injected\":%llu}",
                i == 0 ? "" : ",", p.level, p.mean_rounds,
                static_cast<unsigned long long>(p.worst_rounds),
                static_cast<unsigned long long>(p.diverged),
                static_cast<unsigned long long>(p.injected));
  }
  std::printf("],\"sim\":[");
  for (size_t i = 0; i < sim_points.size(); ++i) {
    const SimPoint& p = sim_points[i];
    std::printf("%s{\"rate\":%.2f,\"wasted_frac\":%.4f,\"makespan_ms\":%.1f,"
                "\"transient\":%llu,\"persistent\":%llu,\"escalations\":%llu}",
                i == 0 ? "" : ",", p.level, p.wasted_frac, p.makespan_ms,
                static_cast<unsigned long long>(p.transient),
                static_cast<unsigned long long>(p.persistent),
                static_cast<unsigned long long>(p.escalations));
  }
  std::printf("],\"executor\":[");
  for (size_t i = 0; i < exec_points.size(); ++i) {
    const ExecPoint& p = exec_points[i];
    std::printf("%s{\"crash_rate\":%.3f,\"items_per_ms\":%.1f,\"crashes\":%llu,"
                "\"escalations\":%llu,\"trace_events\":%llu,\"trace_dropped\":%llu}",
                i == 0 ? "" : ",", p.crash_rate, p.throughput,
                static_cast<unsigned long long>(p.crashes),
                static_cast<unsigned long long>(p.escalations),
                static_cast<unsigned long long>(p.trace_events),
                static_cast<unsigned long long>(p.trace_dropped));
  }
  std::printf("]}\n");
  return 0;
}
