// Experiment E3 — concurrency, failures and the §4.3 counterexample.
//
// Paper claims: (i) with concurrent rounds "work-stealing attempts can fail";
// (ii) a failed attempt implies another core's success; (iii) for the correct
// filter the number of failures is bounded, while (iv) the permissive filter
// `canSteal(stealee) = stealee.load() >= 2` lets two non-idle cores ping-pong
// a thread forever while an idle core starves (3-core example, loads 0/1/2).
//
// Reproduction: the adversarial AF(work-conserved) fixpoint on the exact
// 3-core scenario and growing machines, the extracted livelock cycle, and a
// randomized long-run failure census comparing the two filters.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/conservation.h"
#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/concurrency.h"
#include "src/verify/convergence.h"

namespace optsched {
namespace {

using bench::F;

void LivenessRow(const BalancePolicy& policy, uint32_t cores, int64_t max_load,
                 std::vector<std::vector<std::string>>& rows,
                 bool symmetry_reduction = false) {
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = cores;
  options.bounds.max_load = max_load;
  options.max_orders_per_state = 720;  // 6!: exhaustive up to 6 cores
  options.symmetry_reduction = symmetry_reduction;
  const bench::Timer timer;
  const auto result = verify::CheckConcurrentConvergence(policy, options);
  rows.push_back(
      {policy.name() + (symmetry_reduction ? " [sym-reduced]" : ""), F("%u", cores),
       F("%lld", static_cast<long long>(max_load)),
       F("%llu", static_cast<unsigned long long>(result.graph_states)),
       result.result.holds ? "work-conserving" : "LIVELOCK",
       result.result.holds ? F("%llu", static_cast<unsigned long long>(result.worst_case_rounds))
                           : std::string("-"),
       F("%.1f", timer.ElapsedMs())});
}

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  bench::Section("E3a: adversarial liveness, AF(work-conserved) over every steal order");
  {
    std::vector<std::vector<std::string>> rows;
    const auto sound = policies::MakeThreadCount();
    const auto broken = policies::MakeBrokenCanSteal();
    for (uint32_t cores : {3u, 4u, 5u}) {
      LivenessRow(*sound, cores, 4, rows);
    }
    // Symmetry reduction (sound for load-only policies): same verdict and N,
    // n!-smaller graph, reaching bounds the raw graph cannot.
    LivenessRow(*sound, 5, 4, rows, /*symmetry_reduction=*/true);
    LivenessRow(*sound, 6, 4, rows, /*symmetry_reduction=*/true);
    LivenessRow(*broken, 3, 4, rows);
    LivenessRow(*broken, 4, 3, rows);
    bench::PrintTable({"policy", "cores", "max_load", "graph_states", "verdict", "worst_N", "ms"},
                      rows);
  }

  bench::Section("E3b: the paper's exact 3-core scenario (loads 0,1,2)");
  {
    verify::ConvergenceCheckOptions options;
    options.bounds.num_cores = 3;
    options.bounds.max_load = 2;
    options.bounds.total_load = 3;
    const auto broken_result =
        verify::CheckConcurrentConvergence(*policies::MakeBrokenCanSteal(), options);
    bench::Note(std::string("broken filter: ") + broken_result.result.ToString());
    const auto sound_result =
        verify::CheckConcurrentConvergence(*policies::MakeThreadCount(), options);
    bench::Note(std::string("listing-1 filter: ") + sound_result.result.ToString() +
                F(" [worst N=%llu]",
                  static_cast<unsigned long long>(sound_result.worst_case_rounds)));
  }

  bench::Section("E3c: failure causality (a failed re-check implicates a prior success)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& policy :
         {policies::MakeThreadCount(), policies::MakeBrokenCanSteal()}) {
      verify::ConvergenceCheckOptions options;
      options.bounds.num_cores = 4;
      options.bounds.max_load = 3;
      const auto result = verify::CheckFailureCausality(*policy, options);
      rows.push_back({policy->name(),
                      F("%llu", static_cast<unsigned long long>(result.states_checked)),
                      F("%llu", static_cast<unsigned long long>(result.checks_performed)),
                      result.holds ? "holds" : "VIOLATED"});
    }
    bench::PrintTable({"policy", "states", "(state,order) pairs", "verdict"}, rows);
  }

  bench::Section("E3d: long-run failure census (random orders, 64 random starts)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const bool broken : {false, true}) {
      const auto policy = broken
                              ? std::shared_ptr<const BalancePolicy>(policies::MakeBrokenCanSteal())
                              : std::shared_ptr<const BalancePolicy>(policies::MakeThreadCount());
      for (uint32_t cores : {4u, 8u, 16u}) {
        uint64_t failures_first = 0;
        uint64_t failures_rest = 0;
        uint64_t starved_runs = 0;
        Rng rng(7 + cores);
        for (int trial = 0; trial < 64; ++trial) {
          std::vector<int64_t> loads(cores, 0);
          for (uint32_t c = 0; c < cores; ++c) {
            loads[c] = rng.NextInRange(0, 4);
          }
          MachineState machine = MachineState::FromLoads(loads);
          LoadBalancer balancer(policy);
          for (int round = 0; round < 200; ++round) {
            const RoundResult r = balancer.RunRound(machine, rng);
            (round < 100 ? failures_first : failures_rest) += r.failures;
          }
          if (!machine.WorkConserved()) {
            ++starved_runs;
          }
        }
        rows.push_back({policy->name(), F("%u", cores),
                        F("%llu", static_cast<unsigned long long>(failures_first)),
                        F("%llu", static_cast<unsigned long long>(failures_rest)),
                        F("%llu/64", static_cast<unsigned long long>(starved_runs))});
      }
    }
    bench::PrintTable({"policy", "cores", "failures_rounds_0-99", "failures_rounds_100-199",
                       "non-conserved after 200 rounds"},
                      rows);
  }

  bench::Note("\nExpected shape (paper): the sound filter's failures die out once balanced\n"
              "(bounded by the potential argument); the broken filter keeps failing and can\n"
              "leave the machine non-work-conserved indefinitely, and the checker exhibits\n"
              "the (0,1,2) -> (0,2,1) -> (0,1,2) livelock cycle.");
  return 0;
}
