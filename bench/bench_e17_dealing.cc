// Experiment E17 — proactive work-dealing: steal-only vs deal-only vs hybrid
// over three arrival shapes, measuring what the deal path is FOR — cutting
// failed steal attempts and thief-side synchronization per migrated item
// without giving back makespan.
//
//   Modes (docs/runtime.md#work-dealing):
//     steal_only  reactive three-step balancing only (the paper's baseline).
//     deal_only   steal fallback disabled; surplus moves solely through
//                 owner-side pushes into idle peers' deal mailboxes
//                 (grace_rounds = 0: always-on, no robbery needed to open
//                 the window). The ablation that isolates the deal transport.
//     hybrid      both on; dealing gated by the post-steal grace window
//                 (grace_rounds = 8), steal stays the unconditional fallback.
//                 This is the shipping configuration.
//   Workloads:
//     burst       every item seeded on worker 0 — the overloaded producer.
//     skewed      60% of items on worker 0, the rest spread evenly.
//     forkjoin    a fib(n) task tree unfolding from one seeded root
//                 (src/workload/forkjoin.h), so the imbalance regenerates
//                 at every spawn instead of existing only at t = 0.
//
// Headline metrics, per (workload, mode):
//   failed steals            total_attempts - total_successes: each one is a
//                            thief-side synchronizing acquire on a victim
//                            that moved nothing — pure contention.
//   sync ops / migrated item modeled from measured counters as
//                            (steal attempts + items stolen + deal items)
//                            / items migrated: every attempt costs at least
//                            one victim-side acquire (lock pair or top CAS),
//                            every migrated item one transfer op — a
//                            thief-side CAS when stolen, an owner-side ring
//                            store when dealt.
//   makespan                 wall ms of the closed-system drain (best of
//                            --repeat, warmup discarded).
//
// Expectation (gated by bench/e17_dealing_floor.json in CI perf-smoke):
// on the burst workload, hybrid's failed steals <= steal_only's at
// equal-or-better makespan (within the floor's tolerance) — the dealer
// converts would-be failed CASes into owner-side pushes.
//
// Writes a machine-readable summary to BENCH_e17_dealing.json (override with
// --out=PATH). Exits nonzero if the burst-workload hybrid expectation fails
// in-binary (the JSON floor applies the CI margins on top).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/policies/thread_count.h"
#include "src/ingress/deal_channel.h"
#include "src/runtime/executor.h"
#include "src/task/task.h"
#include "src/trace/chrome_trace.h"
#include "src/workload/forkjoin.h"

namespace optsched {
namespace {

using bench::F;

enum class Mode { kStealOnly, kDealOnly, kHybrid };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kStealOnly:
      return "steal_only";
    case Mode::kDealOnly:
      return "deal_only";
    case Mode::kHybrid:
      return "hybrid";
  }
  return "?";
}

runtime::WorkItem Item(uint64_t id, uint64_t units) {
  return runtime::WorkItem{.id = id, .work_units = units, .weight = 1024};
}

struct CaseResult {
  std::string workload;
  std::string mode;
  double makespan_ms = 0.0;
  double items_per_ms = 0.0;
  uint64_t total_items = 0;
  uint64_t steal_attempts = 0;
  uint64_t steal_successes = 0;
  uint64_t failed_steals = 0;
  uint64_t items_stolen = 0;
  uint64_t deal_rounds = 0;
  uint64_t deal_items = 0;  // mailbox-accepted + direct-spilled
  uint64_t migrated = 0;    // items_stolen + deal_items
  double sync_per_migrated = 0.0;
  double failed_per_migrated = 0.0;
};

// One deal knob set for both deal modes, so the hybrid-vs-deal_only contrast
// is purely the window + fallback, not a tuning delta. max_batch 32 lets a
// burst dealer actually shed ceil(gap/2) in few rounds; check interval 4
// keeps the gate off the per-item fast path.
void ApplyMode(runtime::ExecutorConfig& config, Mode mode,
               ingress::DealChannel* channel) {
  switch (mode) {
    case Mode::kStealOnly:
      config.steal_enabled = true;
      config.deal.enabled = false;
      return;
    case Mode::kDealOnly:
      config.steal_enabled = false;
      config.deal.enabled = true;
      config.deal.grace_rounds = 0;  // no robbery can open a window
      break;
    case Mode::kHybrid:
      config.steal_enabled = true;
      config.deal.enabled = true;
      config.deal.grace_rounds = 8;  // argolib-style post-steal window
      break;
  }
  config.deal.threshold = 2;
  config.deal.max_batch = 32;
  config.deal.check_interval_items = 4;
  config.deal_sink = channel;
}

void Fold(CaseResult& result, const runtime::ExecutorReport& report) {
  const double ms = static_cast<double>(report.wall_time_ns) / 1e6;
  if (result.makespan_ms != 0.0 && ms >= result.makespan_ms) {
    return;  // keep the best repeat
  }
  result.makespan_ms = ms;
  result.items_per_ms = report.throughput_items_per_ms();
  result.total_items = report.total_items;
  result.steal_attempts = report.total_attempts();
  result.steal_successes = report.total_successes();
  result.failed_steals = report.total_attempts() - report.total_successes();
  result.items_stolen = report.total_items_stolen();
  result.deal_rounds = report.total_deal_rounds();
  result.deal_items = report.total_deal_items_dealt() + report.total_deal_items_direct();
  result.migrated = result.items_stolen + result.deal_items;
  const uint64_t denom = result.migrated > 0 ? result.migrated : 1;
  result.sync_per_migrated =
      static_cast<double>(result.steal_attempts + result.migrated) /
      static_cast<double>(denom);
  result.failed_per_migrated =
      static_cast<double>(result.failed_steals) / static_cast<double>(denom);
}

runtime::ExecutorConfig BaseConfig(runtime::QueueBackend backend, uint32_t workers,
                                   uint64_t items, uint64_t spin_per_unit, uint64_t seed) {
  runtime::ExecutorConfig config;
  config.num_workers = workers;
  config.backend = backend;
  uint64_t ring = 2;
  while (ring < items + 1 && ring < (1ull << 20)) {
    ring <<= 1;
  }
  config.chase_lev_capacity = static_cast<uint32_t>(ring);
  config.spin_per_unit = spin_per_unit;
  config.seed = seed;
  return config;
}

// burst: everything on worker 0. skewed: 60% on worker 0, rest spread evenly
// — imbalance the filter sees immediately, but with enough local work that
// peers only go hunting once their own slice drains.
CaseResult RunSeeded(const std::string& workload, Mode mode,
                     runtime::QueueBackend backend, uint32_t workers, uint64_t items,
                     uint64_t units, uint64_t spin, int repeat) {
  CaseResult result;
  result.workload = workload;
  result.mode = ModeName(mode);
  const bool skewed = workload == "skewed";
  for (int run = -1; run < repeat; ++run) {
    runtime::ExecutorConfig config =
        BaseConfig(backend, workers, items, spin, static_cast<uint64_t>(run + 2));
    ingress::DealChannel channel(workers, /*capacity_per_mailbox=*/256);
    ApplyMode(config, mode, &channel);
    runtime::Executor executor(policies::MakeThreadCount(), config);
    channel.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

    const uint64_t hot = skewed ? (items * 6) / 10 : items;
    std::vector<runtime::WorkItem> seed;
    seed.reserve(hot);
    for (uint64_t id = 1; id <= hot; ++id) {
      seed.push_back(Item(id, units));
    }
    executor.Seed(0, seed);
    if (skewed && workers > 1) {
      const uint64_t rest = items - hot;
      const uint64_t per = rest / (workers - 1);
      uint64_t id = hot + 1;
      for (uint32_t w = 1; w < workers; ++w) {
        const uint64_t count = w + 1 < workers ? per : rest - per * (workers - 2);
        std::vector<runtime::WorkItem> slice;
        slice.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          slice.push_back(Item(id++, units));
        }
        executor.Seed(w, slice);
      }
    }
    const runtime::ExecutorReport report = executor.Run();
    if (run < 0) {
      continue;  // discarded warmup: thread startup, first-touch, ramp
    }
    Fold(result, report);
  }
  return result;
}

CaseResult RunForkJoin(Mode mode, runtime::QueueBackend backend, uint32_t workers,
                       uint64_t n, uint64_t cutoff, int repeat) {
  CaseResult result;
  result.workload = "forkjoin";
  result.mode = ModeName(mode);
  task::TaskGraph graph(task::TaskGraphOptions{.max_workers = workers});
  const uint64_t want = workload::FibSequential(n);
  for (int run = -1; run < repeat; ++run) {
    graph.Reset();
    runtime::ExecutorConfig config =
        BaseConfig(backend, workers, /*items=*/4096, /*spin=*/0,
                   static_cast<uint64_t>(run + 2));
    config.task_runner = &graph;
    ingress::DealChannel channel(workers, /*capacity_per_mailbox=*/256);
    ApplyMode(config, mode, &channel);
    runtime::Executor executor(policies::MakeThreadCount(), config);
    channel.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });
    uint64_t fib = 0;
    executor.Seed(0, {workload::MakeFibRoot(graph, n, cutoff, &fib)});
    const runtime::ExecutorReport report = executor.Run();
    if (fib != want) {
      std::fprintf(stderr, "E17 forkjoin (%s) computed %llu, want %llu\n",
                   ModeName(mode), (unsigned long long)fib, (unsigned long long)want);
      std::abort();
    }
    if (run < 0) {
      continue;
    }
    Fold(result, report);
  }
  return result;
}

std::string FlagValue(int argc, char** argv, const char* name, const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

void PrintCases(const std::vector<CaseResult>& cases) {
  std::vector<std::vector<std::string>> rows;
  for (const CaseResult& c : cases) {
    rows.push_back({c.mode, F("%.1f", c.makespan_ms), F("%.1f", c.items_per_ms),
                    F("%llu", (unsigned long long)c.failed_steals),
                    F("%llu", (unsigned long long)c.items_stolen),
                    F("%llu", (unsigned long long)c.deal_items),
                    F("%llu", (unsigned long long)c.migrated),
                    F("%.2f", c.failed_per_migrated), F("%.2f", c.sync_per_migrated)});
  }
  bench::PrintTable({"mode", "makespan ms", "items/ms", "failed steals", "stolen",
                     "dealt", "migrated", "failed/migr", "sync/migr"},
                    rows);
}

int Main(int argc, char** argv) {
  const uint32_t workers =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "workers", "8").c_str()));
  const uint64_t items =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "items", "24000").c_str()));
  // ~2000 calibrated spins per item: heavy enough that peers periodically
  // drain to idle between steals — the regime where the post-steal deal
  // window finds an eligible recipient (require_idle_peer) at all. Lighter
  // items keep every peer permanently mid-execution and dealing stays dormant
  // in hybrid mode, which would make this whole comparison vacuous.
  const uint64_t units =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "units", "20").c_str()));
  const uint64_t spin =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "spin", "100").c_str()));
  const uint64_t fib_n =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "fib-n", "27").c_str()));
  const uint64_t fib_cutoff =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "fib-cutoff", "12").c_str()));
  const int repeat = std::atoi(FlagValue(argc, argv, "repeat", "3").c_str());
  const std::string out = FlagValue(argc, argv, "out", "BENCH_e17_dealing.json");
  // chase_lev is the shipping backend and the one where the owner-push vs
  // thief-CAS contrast is sharpest; --backend=locked runs the reference.
  const runtime::QueueBackend backend =
      FlagValue(argc, argv, "backend", "chase_lev") == "locked"
          ? runtime::QueueBackend::kLocked
          : runtime::QueueBackend::kChaseLev;

  const Mode kModes[] = {Mode::kStealOnly, Mode::kDealOnly, Mode::kHybrid};

  bench::Section(F("E17 burst — %u workers, %llu items x %llu units on queue 0, %s backend",
                   workers, (unsigned long long)items, (unsigned long long)units,
                   runtime::QueueBackendName(backend)));
  std::vector<CaseResult> burst;
  for (Mode mode : kModes) {
    burst.push_back(RunSeeded("burst", mode, backend, workers, items, units, spin, repeat));
  }
  PrintCases(burst);

  bench::Section(F("E17 skewed — 60%% of %llu items on queue 0, rest spread",
                   (unsigned long long)items));
  std::vector<CaseResult> skewed;
  for (Mode mode : kModes) {
    skewed.push_back(RunSeeded("skewed", mode, backend, workers, items, units, spin, repeat));
  }
  PrintCases(skewed);

  bench::Section(F("E17 forkjoin — fib(%llu) cutoff %llu task tree from one root",
                   (unsigned long long)fib_n, (unsigned long long)fib_cutoff));
  std::vector<CaseResult> forkjoin;
  for (Mode mode : kModes) {
    forkjoin.push_back(RunForkJoin(mode, backend, workers, fib_n, fib_cutoff, repeat));
  }
  PrintCases(forkjoin);

  // In-binary expectation on the burst workload (CI applies the checked-in
  // margins from bench/e17_dealing_floor.json on top of the JSON artifact):
  // hybrid must not fail meaningfully MORE steals than steal-only (+64
  // absolute slack — at this work-bound operating point both sit near zero
  // and single-digit timing noise must not flip the gate), and must not give
  // back more than 25% makespan doing it. deal_only is an ablation, not a
  // gate — with no fallback its makespan depends on deal-round cadence alone.
  const CaseResult& so = burst[0];
  const CaseResult& hy = burst[2];
  bool hybrid_ok = true;
  if (hy.failed_steals > so.failed_steals + 64) {
    bench::Note(F("FAIL: hybrid failed steals %llu > steal_only %llu + 64 on burst",
                  (unsigned long long)hy.failed_steals,
                  (unsigned long long)so.failed_steals));
    hybrid_ok = false;
  }
  if (hy.makespan_ms > so.makespan_ms * 1.25) {
    bench::Note(F("FAIL: hybrid makespan %.1f ms > 1.25 * steal_only %.1f ms on burst",
                  hy.makespan_ms, so.makespan_ms));
    hybrid_ok = false;
  }
  if (hybrid_ok) {
    bench::Note(F("hybrid on burst: failed steals %llu vs %llu, makespan %.1f vs %.1f ms",
                  (unsigned long long)hy.failed_steals,
                  (unsigned long long)so.failed_steals, hy.makespan_ms, so.makespan_ms));
  }

  // Machine-readable summary (CI perf-smoke artifact + floor check).
  std::string json =
      F("{\"experiment\":\"e17_dealing\",\"workers\":%u,\"items\":%llu,\"units\":%llu,"
        "\"spin\":%llu,\"fib_n\":%llu,\"fib_cutoff\":%llu,\"backend\":\"%s\","
        "\"workloads\":[",
        workers, (unsigned long long)items, (unsigned long long)units,
        (unsigned long long)spin, (unsigned long long)fib_n,
        (unsigned long long)fib_cutoff, runtime::QueueBackendName(backend));
  const std::vector<const std::vector<CaseResult>*> all = {&burst, &skewed, &forkjoin};
  for (size_t g = 0; g < all.size(); ++g) {
    json += F("%s{\"workload\":\"%s\",\"modes\":[", g ? "," : "",
              (*all[g])[0].workload.c_str());
    for (size_t i = 0; i < all[g]->size(); ++i) {
      const CaseResult& c = (*all[g])[i];
      json += F("%s{\"mode\":\"%s\",\"makespan_ms\":%.2f,\"items_per_ms\":%.2f,"
                "\"total_items\":%llu,\"steal_attempts\":%llu,\"steal_successes\":%llu,"
                "\"failed_steals\":%llu,\"items_stolen\":%llu,\"deal_rounds\":%llu,"
                "\"deal_items\":%llu,\"migrated\":%llu,\"failed_per_migrated\":%.3f,"
                "\"sync_per_migrated\":%.3f}",
                i ? "," : "", c.mode.c_str(), c.makespan_ms, c.items_per_ms,
                (unsigned long long)c.total_items, (unsigned long long)c.steal_attempts,
                (unsigned long long)c.steal_successes, (unsigned long long)c.failed_steals,
                (unsigned long long)c.items_stolen, (unsigned long long)c.deal_rounds,
                (unsigned long long)c.deal_items, (unsigned long long)c.migrated,
                c.failed_per_migrated, c.sync_per_migrated);
    }
    json += "]}";
  }
  json += F("],\"burst_hybrid_ok\":%s}\n", hybrid_ok ? "true" : "false");
  if (trace::WriteStringToFile(out, json)) {
    std::printf("\nsummary -> %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "failed to write '%s'\n", out.c_str());
    return 1;
  }
  return hybrid_ok ? 0 : 1;
}

}  // namespace
}  // namespace optsched

int main(int argc, char** argv) { return optsched::Main(argc, argv); }
