// Experiment E5 — lock-free vs locked selection (paper §1/§3.1, DESIGN D3).
//
// Paper claim: "Introducing locks to avoid failures is not a desirable
// option: locking the runqueue of the third core prevents that core from
// scheduling work and may impact the whole system performance. We think that
// it is desirable to allow cores to look at the other cores' states and take
// optimistic decisions based on these observations, without locks."
//
// Reproduction (real threads): the work-stealing executor drains an
// imbalanced work set with (a) the paper's lock-free seqlock-snapshot
// selection and (b) a selection phase that locks every runqueue to get an
// exact snapshot. We report wall time, throughput, selection-phase latency
// percentiles and steal outcomes as worker count grows.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/policies/thread_count.h"
#include "src/runtime/executor.h"

namespace optsched {
namespace {

using bench::F;

struct RunResult {
  double wall_ms = 0;
  double throughput = 0;
  double sel_p50_ns = 0;
  double sel_p99_ns = 0;
  uint64_t steals = 0;
  uint64_t failed_recheck = 0;
};

RunResult RunOnce(uint32_t workers, bool locked_selection, uint64_t seed) {
  runtime::ExecutorConfig config;
  config.num_workers = workers;
  config.locked_selection = locked_selection;
  config.spin_per_unit = 60;
  config.seed = seed;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  // Heavy imbalance: all work starts on worker 0, plus a trickle on worker 1
  // so balancing stays active.
  std::vector<runtime::WorkItem> items;
  for (uint64_t i = 0; i < 3000; ++i) {
    items.push_back({.id = i, .work_units = 60, .weight = 1024});
  }
  runtime::Executor* e = &executor;
  e->Seed(0, items);
  e->Seed(1, std::vector<runtime::WorkItem>(items.begin(), items.begin() + 200));

  const auto report = executor.Run();
  RunResult out;
  out.wall_ms = static_cast<double>(report.wall_time_ns) / 1e6;
  out.throughput = report.throughput_items_per_ms();
  stats::LogHistogram selection;
  for (const auto& w : report.workers) {
    selection.Merge(w.selection_latency_ns);
    out.steals += w.steals.successes;
    out.failed_recheck += w.steals.failed_recheck;
  }
  out.sel_p50_ns = selection.Percentile(0.5);
  out.sel_p99_ns = selection.Percentile(0.99);
  return out;
}

// Median-of-3 to tame scheduling noise.
RunResult RunMedian(uint32_t workers, bool locked_selection) {
  RunResult results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = RunOnce(workers, locked_selection, 100 + i);
  }
  std::sort(std::begin(results), std::end(results),
            [](const RunResult& a, const RunResult& b) { return a.wall_ms < b.wall_ms; });
  return results[1];
}

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  bench::Section("E5: lock-free (seqlock) vs locked selection phase, real threads");
  const uint32_t hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<uint32_t> worker_counts{2, 4};
  if (hw >= 8) {
    worker_counts.push_back(8);
  }
  if (hw >= 16) {
    worker_counts.push_back(16);
  }

  std::vector<std::vector<std::string>> rows;
  for (uint32_t workers : worker_counts) {
    for (const bool locked : {false, true}) {
      const auto r = RunMedian(workers, locked);
      rows.push_back({F("%u", workers), locked ? "locked-all-queues" : "lock-free-seqlock",
                      F("%.1f", r.wall_ms), F("%.0f", r.throughput), F("%.0f", r.sel_p50_ns),
                      F("%.0f", r.sel_p99_ns),
                      F("%llu", static_cast<unsigned long long>(r.steals)),
                      F("%llu", static_cast<unsigned long long>(r.failed_recheck))});
    }
  }
  bench::PrintTable({"workers", "selection", "wall_ms", "items/ms", "sel_p50_ns", "sel_p99_ns",
                     "steals", "failed_recheck"},
                    rows);
  bench::Section("E5b: open system — sustained arrivals on one queue, 100ms window");
  {
    std::vector<std::vector<std::string>> rows;
    for (const bool locked : {false, true}) {
      runtime::ExecutorConfig config;
      config.num_workers = std::min(4u, hw * 2);
      config.locked_selection = locked;
      config.spin_per_unit = 60;
      runtime::Executor executor(policies::MakeThreadCount(), config);
      const auto producer = [](runtime::Executor& e) {
        uint64_t id = 0;
        while (!e.stopped()) {
          e.Submit(0, {.id = id++, .work_units = 60, .weight = 1024});
          for (volatile int spin = 0; spin < 1500; ++spin) {
          }
        }
      };
      const auto report = executor.RunFor(100, producer);
      uint64_t executed = 0;
      for (const auto& w : report.workers) {
        executed += w.items_executed;
      }
      rows.push_back({locked ? "locked-all-queues" : "lock-free-seqlock",
                      F("%llu", static_cast<unsigned long long>(report.total_items)),
                      F("%llu", static_cast<unsigned long long>(executed)),
                      F("%llu", static_cast<unsigned long long>(report.items_left_unexecuted)),
                      F("%llu", static_cast<unsigned long long>(report.total_successes()))});
    }
    bench::PrintTable({"selection", "submitted", "executed", "left at deadline", "steals"},
                      rows);
  }

  bench::Note(F("\n(host has %u hardware threads)", hw));
  bench::Note("Expected shape (paper): lock-free selection keeps the selection phase cheap\n"
              "and non-intrusive; locking every runqueue inflates selection latency and, as\n"
              "core count grows, stalls owners and hurts drain time. Failed re-checks are\n"
              "the price of optimism and stay a small fraction of steals.");
  return 0;
}
