// Experiment E16 — structured parallelism on the executor: the src/task
// continuation-counted fork-join layer driving recursive kernels
// (src/workload/forkjoin.h) through the real spawn/steal machinery.
//
//   E16a (alloc audit): a single-threaded micro-harness drains the entire
//       fib and mergesort task trees through TaskGraph::RunItemOn with a
//       sink that pushes straight into a ConcurrentRunQueue — the full
//       steady-state spawn path (fork, child allocation from the warmed
//       arena, batched owner push, join decrement, continuation hand-off)
//       with global operator-new calls counted inside the measured region.
//       The first drain warms the arena and the queue to their high-water
//       marks OUTSIDE the counted region; the audited rerun must allocate
//       exactly zero on the chase_lev backend (fixed ring). The locked
//       backend row is the ablation contrast: std::deque chunk churn makes
//       its count nonzero by design, so it is reported, not gated.
//   E16b (spawn throughput + tree steal bound): fib(30, cutoff 18) and
//       mergesort(1M) on the real executor, W workers, both backends,
//       measuring completed tasks/ms and steal traffic. The fib tree is the
//       rooted-tree reference workload for the Leiserson-Schardl-Suksompong
//       steal bound: on chase_lev (owner LIFO bottom, thief FIFO top) the
//       run must finish within 64 * W * depth successful steals, depth
//       being the longest spawn chain (n - cutoff + 1). The locked backend
//       steals newest-first and is exempt — its row shows WHY the bound
//       needs the deque.
//   E16c (skewed tree, steal-one vs steal-half): the skewed spine workload
//       — each spine node forks `leaves` heavy leaves plus the next spine
//       node, so ready leaves pile up in one owner's deque. Batched
//       steal-half (cap 8) must move at least as much work per unit time as
//       steal-one (cap 1): with the victim rebuilding its pile after every
//       handoff, each successful steal should carry a batch, not a leaf.
//
// Writes a machine-readable summary to BENCH_e16_forkjoin.json (override
// with --out=PATH). CI's perf-smoke job gates tasks/ms and the steal-half /
// steal-one ratio against bench/e16_forkjoin_floor.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/policies/thread_count.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/executor.h"
#include "src/task/task.h"
#include "src/trace/chrome_trace.h"
#include "src/workload/forkjoin.h"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_count_allocs{false};

inline void CountAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

// Global allocation counter for E16a. Only the default-aligned forms are
// replaced (the spawn path allocates nothing over-aligned); the deletes must
// pair with the replaced news, hence the full set.
void* operator new(std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace optsched {
namespace {

using bench::F;

// --- E16a: steady-state allocation audit of the spawn/join path -------------

// Direct-drive sink: spawned batches go straight onto one queue's owner end —
// the same push the executor's SubmitFromWorker bottoms out in, minus the
// wakeup bookkeeping (which the single-threaded drain has no use for).
class QueueSink final : public task::SpawnSink {
 public:
  explicit QueueSink(runtime::ConcurrentRunQueue& queue) : queue_(queue) {}
  void SubmitBatch(uint32_t /*worker*/, const runtime::WorkItem* items,
                   uint32_t count) override {
    queue_.PushBatchOwner(items, count);
  }
  void OnFork(uint32_t /*worker*/, uint64_t /*continuation_id*/,
              uint32_t /*children*/) override {}
  void OnJoinFire(uint32_t /*worker*/, uint64_t /*continuation_id*/) override {}

 private:
  runtime::ConcurrentRunQueue& queue_;
};

struct AllocAudit {
  std::string kernel;
  std::string backend;
  uint64_t tasks = 0;
  uint64_t allocs = 0;
  bool gated = false;  // only the chase_lev rows gate the exit code
};

// Drains the graph's current root to completion through one queue; returns
// tasks run. `counted` toggles the operator-new counter around the whole
// drain (body execution included — the kernels themselves must not allocate).
uint64_t DrainRoot(task::TaskGraph& graph, runtime::ConcurrentRunQueue& queue,
                   const runtime::WorkItem& root, bool counted) {
  QueueSink sink(queue);
  queue.PushBatchOwner(&root, 1);
  uint64_t tasks = 0;
  if (counted) {
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  while (std::optional<runtime::WorkItem> item = queue.PopForRun()) {
    graph.RunItemOn(*item, 0, sink);
    queue.FinishCurrent();
    ++tasks;
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  return tasks;
}

AllocAudit RunFibAudit(runtime::QueueBackend backend, uint64_t n, uint64_t cutoff) {
  runtime::ConcurrentMachine machine(1, runtime::MachineOptions{.backend = backend});
  task::TaskGraph graph(task::TaskGraphOptions{.max_workers = 1});
  AllocAudit audit;
  audit.kernel = "fib";
  audit.backend = runtime::QueueBackendName(backend);
  audit.gated = backend == runtime::QueueBackend::kChaseLev;
  uint64_t result = 0;
  // Warm drain: the arena reaches its node high-water mark, the queue its
  // layout; every later run recycles both.
  DrainRoot(graph, machine.queue(0),
            workload::MakeFibRoot(graph, n, cutoff, &result), /*counted=*/false);
  graph.Reset();
  g_allocs.store(0);
  audit.tasks = DrainRoot(graph, machine.queue(0),
                          workload::MakeFibRoot(graph, n, cutoff, &result),
                          /*counted=*/true);
  audit.allocs = g_allocs.load();
  if (result != workload::FibSequential(n)) {
    std::fprintf(stderr, "E16a fib audit computed the wrong value\n");
    std::abort();
  }
  return audit;
}

AllocAudit RunMergesortAudit(runtime::QueueBackend backend, uint64_t n, uint64_t cutoff) {
  runtime::ConcurrentMachine machine(1, runtime::MachineOptions{.backend = backend});
  task::TaskGraph graph(task::TaskGraphOptions{.max_workers = 1});
  AllocAudit audit;
  audit.kernel = "mergesort";
  audit.backend = runtime::QueueBackendName(backend);
  audit.gated = backend == runtime::QueueBackend::kChaseLev;
  std::vector<uint64_t> data(n);
  std::vector<uint64_t> scratch(n);
  std::mt19937_64 rng(1);
  for (uint64_t& v : data) {
    v = rng();
  }
  const std::vector<uint64_t> shuffled = data;  // reshuffle source for run 2
  DrainRoot(graph, machine.queue(0),
            workload::MakeMergesortRoot(graph, data.data(), scratch.data(), n, cutoff),
            /*counted=*/false);
  data = shuffled;  // un-sort outside the counted region
  graph.Reset();
  g_allocs.store(0);
  audit.tasks = DrainRoot(
      graph, machine.queue(0),
      workload::MakeMergesortRoot(graph, data.data(), scratch.data(), n, cutoff),
      /*counted=*/true);
  audit.allocs = g_allocs.load();
  if (!std::is_sorted(data.begin(), data.end())) {
    std::fprintf(stderr, "E16a mergesort audit left the data unsorted\n");
    std::abort();
  }
  return audit;
}

// --- E16b: spawn throughput + the rooted-tree steal bound --------------------

struct KernelResult {
  std::string kernel;
  std::string backend;
  uint64_t tasks = 0;
  double tasks_per_ms = 0.0;
  uint64_t steal_successes = 0;
  uint64_t items_stolen = 0;
  uint64_t steal_bound = 0;  // fib only: 64 * W * (n - cutoff + 1)
  bool within_bound = true;
};

runtime::ExecutorConfig TaskConfig(runtime::QueueBackend backend, task::TaskGraph& graph,
                                   uint32_t workers, uint32_t max_batch, uint64_t seed) {
  runtime::ExecutorConfig config;
  config.num_workers = workers;
  config.backend = backend;
  config.chase_lev_capacity = 4096;
  config.max_steal_batch = max_batch;
  config.task_runner = &graph;
  config.seed = seed;
  return config;
}

KernelResult RunFib(runtime::QueueBackend backend, uint32_t workers, uint64_t n,
                    uint64_t cutoff, int repeat) {
  task::TaskGraph graph(task::TaskGraphOptions{.max_workers = workers});
  KernelResult result;
  result.kernel = "fib";
  result.backend = runtime::QueueBackendName(backend);
  // Longest spawn chain: the leftmost n -> n-1 -> ... descent to the cutoff.
  result.steal_bound = 64ull * workers * (n - cutoff + 1);
  const uint64_t want = workload::FibSequential(n);
  for (int run = -1; run < repeat; ++run) {
    graph.Reset();
    uint64_t fib = 0;
    runtime::Executor executor(
        policies::MakeThreadCount(),
        TaskConfig(backend, graph, workers, 8, static_cast<uint64_t>(run + 2)));
    executor.Seed(0, {workload::MakeFibRoot(graph, n, cutoff, &fib)});
    const runtime::ExecutorReport report = executor.Run();
    if (fib != want) {
      std::fprintf(stderr, "E16b fib computed %llu, want %llu\n",
                   (unsigned long long)fib, (unsigned long long)want);
      std::abort();
    }
    if (run < 0) {
      continue;  // discarded warmup: thread startup, first-touch, ramp
    }
    if (report.throughput_items_per_ms() > result.tasks_per_ms) {
      result.tasks_per_ms = report.throughput_items_per_ms();
      result.tasks = report.total_items;
      result.steal_successes = report.total_successes();
      result.items_stolen = report.total_items_stolen();
    }
  }
  // Only chase_lev promises the bound (owner depth-first, thieves take the
  // shallowest node, every steal hands off a subtree); the locked row is the
  // ablation contrast.
  if (backend == runtime::QueueBackend::kChaseLev) {
    result.within_bound = result.steal_successes <= result.steal_bound;
  }
  return result;
}

KernelResult RunMergesort(runtime::QueueBackend backend, uint32_t workers, uint64_t n,
                          uint64_t cutoff, int repeat) {
  task::TaskGraph graph(task::TaskGraphOptions{.max_workers = workers});
  KernelResult result;
  result.kernel = "mergesort";
  result.backend = runtime::QueueBackendName(backend);
  std::vector<uint64_t> data(n);
  std::vector<uint64_t> scratch(n);
  std::mt19937_64 rng(7);
  for (uint64_t& v : data) {
    v = rng();
  }
  const std::vector<uint64_t> shuffled = data;
  for (int run = -1; run < repeat; ++run) {
    data = shuffled;
    graph.Reset();
    runtime::Executor executor(
        policies::MakeThreadCount(),
        TaskConfig(backend, graph, workers, 8, static_cast<uint64_t>(run + 2)));
    executor.Seed(0, {workload::MakeMergesortRoot(graph, data.data(), scratch.data(), n,
                                                  cutoff)});
    const runtime::ExecutorReport report = executor.Run();
    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "E16b mergesort left the data unsorted\n");
      std::abort();
    }
    if (run < 0) {
      continue;
    }
    if (report.throughput_items_per_ms() > result.tasks_per_ms) {
      result.tasks_per_ms = report.throughput_items_per_ms();
      result.tasks = report.total_items;
      result.steal_successes = report.total_successes();
      result.items_stolen = report.total_items_stolen();
    }
  }
  return result;
}

// --- E16c: skewed tree, steal-one vs steal-half ------------------------------

struct SkewResult {
  std::string mode;
  uint64_t tasks = 0;
  double tasks_per_ms = 0.0;
  uint64_t steal_successes = 0;
  uint64_t items_stolen = 0;
  double items_per_steal = 0.0;
};

SkewResult RunSkewed(uint32_t workers, uint32_t max_batch, const std::string& mode,
                     uint64_t depth, uint64_t leaves, uint64_t leaf_spins, int repeat) {
  task::TaskGraph graph(task::TaskGraphOptions{.max_workers = workers});
  SkewResult result;
  result.mode = mode;
  for (int run = -1; run < repeat; ++run) {
    graph.Reset();
    runtime::Executor executor(policies::MakeThreadCount(),
                               TaskConfig(runtime::QueueBackend::kChaseLev, graph, workers,
                                          max_batch, static_cast<uint64_t>(run + 2)));
    executor.Seed(0, {workload::MakeSkewedRoot(graph, depth, leaves, leaf_spins)});
    const runtime::ExecutorReport report = executor.Run();
    if (run < 0) {
      continue;
    }
    if (report.throughput_items_per_ms() > result.tasks_per_ms) {
      result.tasks_per_ms = report.throughput_items_per_ms();
      result.tasks = report.total_items;
      result.steal_successes = report.total_successes();
      result.items_stolen = report.total_items_stolen();
    }
  }
  result.items_per_steal = result.steal_successes > 0
                               ? static_cast<double>(result.items_stolen) /
                                     static_cast<double>(result.steal_successes)
                               : 0.0;
  return result;
}

std::string FlagValue(int argc, char** argv, const char* name, const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

int Main(int argc, char** argv) {
  const uint32_t workers =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "workers", "8").c_str()));
  const uint64_t fib_n =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "fib-n", "30").c_str()));
  // Cutoff 18 leaves ~1.8k tasks of ~fib(17) sequential work each: deep
  // enough that the tree unfolds across workers, leafy enough that spawn
  // overhead (what E16 measures) stays a visible fraction.
  const uint64_t fib_cutoff =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "fib-cutoff", "18").c_str()));
  const uint64_t sort_n =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "sort-n", "1048576").c_str()));
  const uint64_t sort_cutoff =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "sort-cutoff", "4096").c_str()));
  const uint64_t skew_depth =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "skew-depth", "192").c_str()));
  const uint64_t skew_leaves =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "skew-leaves", "8").c_str()));
  const uint64_t skew_spins =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "skew-spins", "4000").c_str()));
  const int repeat = std::atoi(FlagValue(argc, argv, "repeat", "3").c_str());
  const std::string out = FlagValue(argc, argv, "out", "BENCH_e16_forkjoin.json");

  bench::Section(F("E16a — steady-state allocation audit (fib(%llu, cutoff %llu), "
                   "mergesort(%llu))",
                   (unsigned long long)fib_n, (unsigned long long)fib_cutoff,
                   (unsigned long long)sort_n));
  std::vector<AllocAudit> audits;
  for (const auto backend :
       {runtime::QueueBackend::kChaseLev, runtime::QueueBackend::kLocked}) {
    audits.push_back(RunFibAudit(backend, fib_n, fib_cutoff));
    audits.push_back(RunMergesortAudit(backend, sort_n, sort_cutoff));
  }
  std::vector<std::vector<std::string>> rows;
  for (const AllocAudit& a : audits) {
    rows.push_back({a.kernel, a.backend, F("%llu", (unsigned long long)a.tasks),
                    F("%llu", (unsigned long long)a.allocs), a.gated ? "yes" : "no"});
  }
  bench::PrintTable({"kernel", "backend", "tasks", "heap allocs", "gated"}, rows);
  bool audit_ok = true;
  for (const AllocAudit& a : audits) {
    if (a.gated && a.allocs != 0) {
      audit_ok = false;
      bench::Note(F("FAIL: %s spawn path allocated on chase_lev in steady state",
                    a.kernel.c_str()));
    }
  }
  if (audit_ok) {
    bench::Note("zero heap allocations across both chase_lev kernel drains");
  }

  bench::Section(F("E16b — spawn throughput, %u workers, both backends", workers));
  std::vector<KernelResult> kernels;
  for (const auto backend :
       {runtime::QueueBackend::kChaseLev, runtime::QueueBackend::kLocked}) {
    kernels.push_back(RunFib(backend, workers, fib_n, fib_cutoff, repeat));
    kernels.push_back(RunMergesort(backend, workers, sort_n, sort_cutoff, repeat));
  }
  rows.clear();
  for (const KernelResult& k : kernels) {
    rows.push_back({k.kernel, k.backend, F("%llu", (unsigned long long)k.tasks),
                    F("%.1f", k.tasks_per_ms),
                    F("%llu", (unsigned long long)k.steal_successes),
                    F("%llu", (unsigned long long)k.items_stolen),
                    k.steal_bound ? F("%llu", (unsigned long long)k.steal_bound) : "-",
                    k.within_bound ? "yes" : "NO"});
  }
  bench::PrintTable(
      {"kernel", "backend", "tasks", "tasks/ms", "steals", "items stolen", "bound", "within"},
      rows);
  bool tree_bound_ok = true;
  for (const KernelResult& k : kernels) {
    tree_bound_ok &= k.within_bound;
  }
  if (!tree_bound_ok) {
    bench::Note("FAIL: chase_lev fib steal count exceeded the O(W*depth) bound");
  }

  bench::Section(F("E16c — skewed spine tree (depth %llu, %llu leaves/level), "
                   "steal-one vs steal-half, chase_lev",
                   (unsigned long long)skew_depth, (unsigned long long)skew_leaves));
  std::vector<SkewResult> skews;
  skews.push_back(
      RunSkewed(workers, 1, "steal_one", skew_depth, skew_leaves, skew_spins, repeat));
  skews.push_back(
      RunSkewed(workers, 8, "steal_half", skew_depth, skew_leaves, skew_spins, repeat));
  rows.clear();
  for (const SkewResult& s : skews) {
    rows.push_back({s.mode, F("%llu", (unsigned long long)s.tasks),
                    F("%.1f", s.tasks_per_ms),
                    F("%llu", (unsigned long long)s.steal_successes),
                    F("%llu", (unsigned long long)s.items_stolen),
                    F("%.2f", s.items_per_steal)});
  }
  bench::PrintTable({"mode", "tasks", "tasks/ms", "steals", "items stolen", "items/steal"},
                    rows);
  double skew_ratio = 0.0;
  if (skews[0].tasks_per_ms > 0) {
    skew_ratio = skews[1].tasks_per_ms / skews[0].tasks_per_ms;
    bench::Note(F("steal_half / steal_one = %.2fx (items/steal %.2f vs %.2f)", skew_ratio,
                  skews[1].items_per_steal, skews[0].items_per_steal));
  }

  // Machine-readable summary (CI perf-smoke artifact + floor check).
  std::string json = F(
      "{\"experiment\":\"e16_forkjoin\",\"workers\":%u,\"fib_n\":%llu,"
      "\"fib_cutoff\":%llu,\"sort_n\":%llu,\"sort_cutoff\":%llu,\"alloc_audit\":[",
      workers, (unsigned long long)fib_n, (unsigned long long)fib_cutoff,
      (unsigned long long)sort_n, (unsigned long long)sort_cutoff);
  for (size_t i = 0; i < audits.size(); ++i) {
    json += F("%s{\"kernel\":\"%s\",\"backend\":\"%s\",\"tasks\":%llu,"
              "\"heap_allocs\":%llu,\"gated\":%s}",
              i ? "," : "", audits[i].kernel.c_str(), audits[i].backend.c_str(),
              (unsigned long long)audits[i].tasks, (unsigned long long)audits[i].allocs,
              audits[i].gated ? "true" : "false");
  }
  json += "],\"kernels\":[";
  for (size_t i = 0; i < kernels.size(); ++i) {
    json += F("%s{\"kernel\":\"%s\",\"backend\":\"%s\",\"tasks\":%llu,"
              "\"tasks_per_ms\":%.2f,\"steal_successes\":%llu,\"items_stolen\":%llu,"
              "\"steal_bound\":%llu,\"within_bound\":%s}",
              i ? "," : "", kernels[i].kernel.c_str(), kernels[i].backend.c_str(),
              (unsigned long long)kernels[i].tasks, kernels[i].tasks_per_ms,
              (unsigned long long)kernels[i].steal_successes,
              (unsigned long long)kernels[i].items_stolen,
              (unsigned long long)kernels[i].steal_bound,
              kernels[i].within_bound ? "true" : "false");
  }
  json += F("],\"skewed\":{\"depth\":%llu,\"leaves\":%llu,\"spins\":%llu,"
            "\"steal_half_ratio\":%.3f,\"modes\":[",
            (unsigned long long)skew_depth, (unsigned long long)skew_leaves,
            (unsigned long long)skew_spins, skew_ratio);
  for (size_t i = 0; i < skews.size(); ++i) {
    json += F("%s{\"mode\":\"%s\",\"tasks\":%llu,\"tasks_per_ms\":%.2f,"
              "\"steal_successes\":%llu,\"items_stolen\":%llu,\"items_per_steal\":%.3f}",
              i ? "," : "", skews[i].mode.c_str(), (unsigned long long)skews[i].tasks,
              skews[i].tasks_per_ms, (unsigned long long)skews[i].steal_successes,
              (unsigned long long)skews[i].items_stolen, skews[i].items_per_steal);
  }
  json += "]}}\n";
  if (trace::WriteStringToFile(out, json)) {
    std::printf("\nsummary -> %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "failed to write '%s'\n", out.c_str());
    return 1;
  }
  return (audit_ok && tree_bound_ok) ? 0 : 1;
}

}  // namespace
}  // namespace optsched

int main(int argc, char** argv) { return optsched::Main(argc, argv); }
