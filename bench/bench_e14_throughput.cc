// Experiment E14 — hot-path throughput and allocation audit: batched
// steal-half vs steal-one vs locked selection on an overloaded-producer
// workload (every item seeded on queue 0, all other workers must steal),
// across BOTH queue backends (locked reference vs lock-free Chase-Lev).
//
//   E14a (alloc audit): a single-threaded micro-harness drives the full
//       selection + steal path (SnapshotInto + TrySteal with a reusable
//       StealScratch) through thousands of SUCCESSFUL batched steals and
//       counts global operator-new calls inside the measured region. The
//       steady-state expectation is exactly zero: snapshots refill in place,
//       the candidate list and batch buffer reuse their capacity, and the
//       eligibility callback is a non-allocating FunctionRef. Queue state is
//       restored between iterations OUTSIDE the counted region (un-steal via
//       StealTailLocked, so the deques return to the identical internal
//       layout and never creep across chunk boundaries).
//   E14b (throughput): closed-system executor runs, N items on queue 0,
//       measuring drained items/ms for steal_one (max_steal_batch = 1),
//       steal_half (cap 8) and the locked_selection ablation, plus the same
//       steal modes on the chase_lev backend and a batch-cap sweep
//       {1, 2, 4, 8, 16}. Expectation: steal_half >= steal_one — when
//       successful steals are bounded, each one should move enough work to
//       matter — both beat locked selection, and chase_lev steal_half beats
//       the locked backend (no lock hold on either end of a steal).
//   E14c (tree steal bound): a divide-and-conquer tree (every item below the
//       leaf depth spawns two children into its owner's deque) drained by W
//       workers over the real TrySteal path. Work-stealing theory bounds
//       successful steals by O(W * depth) independent of the 2^(D+1)-1 item
//       count; the section asserts successes <= 64 * W * D per backend.
//
// Writes a machine-readable summary to BENCH_e14_throughput.json (override
// with --out=PATH). CI's perf-smoke job compares steal_half items/ms against
// the checked-in floor in bench/e14_throughput_floor.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/policies/thread_count.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/executor.h"
#include "src/trace/chrome_trace.h"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_count_allocs{false};

inline void CountAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

// Global allocation counter for E14a. Only the default-aligned forms are
// replaced (the hot path allocates nothing over-aligned); the deletes must
// pair with the replaced news, hence the full set.
void* operator new(std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace optsched {
namespace {

using bench::F;

runtime::WorkItem Item(uint64_t id, uint64_t units = 1) {
  return runtime::WorkItem{.id = id, .work_units = units, .weight = 1024};
}

// --- E14a: steady-state allocation audit of the selection + steal path ------

struct AllocAudit {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t items_moved = 0;
  uint64_t allocs = 0;
};

AllocAudit RunAllocAudit(uint64_t attempts) {
  runtime::ConcurrentMachine machine(2);
  // 10 vs 4: gap 6, so every attempt is a SUCCESSFUL batch of floor(6/2) = 3
  // items — the most allocation-prone path (filter, choice, locked snapshot,
  // batch removal, batch push).
  for (uint64_t id = 1; id <= 10; ++id) {
    machine.queue(0).Push(Item(id));
  }
  for (uint64_t id = 11; id <= 14; ++id) {
    machine.queue(1).Push(Item(id));
  }
  const auto policy = policies::MakeThreadCount();
  Rng rng(1);
  runtime::StealCounters counters;
  runtime::StealScratch scratch;
  LoadSnapshot snapshot;
  std::vector<runtime::WorkItem> unsteal;
  const runtime::StealOptions options{.recheck = true, .max_batch = 8};

  // Moves the stolen batch back (thief tail -> victim tail) so every
  // iteration starts from the identical queue state. Runs uncounted.
  auto restore = [&](uint32_t moved) {
    if (moved == 0) {
      return;
    }
    unsteal.clear();
    {
      LockGuard guard(machine.queue(1).lock());
      machine.queue(1).StealTailLocked([](const runtime::WorkItem&) { return true; }, moved,
                                       unsteal);
    }
    LockGuard guard(machine.queue(0).lock());
    machine.queue(0).PushBatchLocked(unsteal.data(), static_cast<uint32_t>(unsteal.size()));
  };

  // Warmup: every scratch vector reaches its high-water capacity.
  for (int i = 0; i < 256; ++i) {
    machine.SnapshotInto(snapshot);
    runtime::StealObservation observation;
    machine.TrySteal(*policy, 1, snapshot, rng, options, counters, nullptr, nullptr,
                     &observation, &scratch);
    restore(observation.items_moved);
  }

  AllocAudit audit;
  audit.attempts = attempts;
  g_allocs.store(0);
  for (uint64_t i = 0; i < attempts; ++i) {
    runtime::StealObservation observation;
    g_count_allocs.store(true, std::memory_order_relaxed);
    machine.SnapshotInto(snapshot);
    const bool ok = machine.TrySteal(*policy, 1, snapshot, rng, options, counters, nullptr,
                                     nullptr, &observation, &scratch);
    g_count_allocs.store(false, std::memory_order_relaxed);
    if (ok) {
      ++audit.successes;
      audit.items_moved += observation.items_moved;
    }
    restore(observation.items_moved);
  }
  audit.allocs = g_allocs.load();
  return audit;
}

// --- E14b: overloaded-producer throughput ----------------------------------

struct ModeResult {
  std::string mode;
  double items_per_ms = 0.0;
  uint64_t steal_actions = 0;
  uint64_t items_stolen = 0;
  uint64_t failed_recheck = 0;
};

ModeResult RunMode(const std::string& mode, uint32_t workers, uint64_t items, uint64_t units,
                   uint64_t spin_per_unit, uint32_t max_batch, bool locked_selection,
                   int repeat,
                   runtime::QueueBackend backend = runtime::QueueBackend::kLocked) {
  ModeResult result;
  result.mode = mode;
  // run < 0 is a discarded warmup: first-touch page faults, frequency ramp
  // and thread-pool jitter land there instead of in the measured repeats.
  for (int run = -1; run < repeat; ++run) {
    runtime::ExecutorConfig config;
    config.num_workers = workers;
    config.backend = backend;
    // Size the bounded ring to the working set, as a deployment would: the
    // locked backend's std::deque grows to hold the whole seed, so a ring
    // that spills most of it to the inbox would measure the spill path, not
    // the deque. Capped at 2^20 slots (~32 MiB of WorkItem words).
    uint64_t ring = 2;
    while (ring < items + 1 && ring < (1ull << 20)) {
      ring <<= 1;
    }
    config.chase_lev_capacity = static_cast<uint32_t>(ring);
    config.spin_per_unit = spin_per_unit;
    config.max_steal_batch = max_batch;
    config.locked_selection = locked_selection;
    config.seed = static_cast<uint64_t>(run < 0 ? 1 : run + 1);
    runtime::Executor executor(policies::MakeThreadCount(), config);
    std::vector<runtime::WorkItem> seed;
    seed.reserve(items);
    for (uint64_t id = 1; id <= items; ++id) {
      seed.push_back(Item(id, units));
    }
    executor.Seed(0, seed);  // the overloaded producer: one hot queue
    const runtime::ExecutorReport report = executor.Run();
    if (run < 0) {
      continue;
    }
    if (report.throughput_items_per_ms() > result.items_per_ms) {
      result.items_per_ms = report.throughput_items_per_ms();
      result.steal_actions = report.total_successes();
      result.items_stolen = report.total_items_stolen();
      result.failed_recheck = report.total_failed_recheck();
    }
  }
  return result;
}

// --- E14c: divide-and-conquer tree, steal-count bound -----------------------

struct TreeResult {
  std::string backend;
  uint64_t total_items = 0;
  uint64_t steal_successes = 0;
  uint64_t steal_bound = 0;  // 64 * workers * depth
  double items_per_ms = 0.0;
  bool within_bound = false;
};

// Every node below `depth` spawns two children into its owner's queue (the
// owner-side batch push), so the whole 2^(depth+1)-1 node tree unfolds from
// one seeded root and spreads only through the real TrySteal path. The
// classic work-stealing argument bounds successful steals by O(W * depth):
// each steal takes a node whose subtree the thief then mines locally, and a
// node can hand off at most its depth in ancestors. 64 is generous slack for
// the policy gate's refusals and cross-core timing, NOT a tuning constant.
TreeResult RunTreeBound(runtime::QueueBackend backend, uint32_t workers, uint32_t depth,
                        uint64_t spin_per_item) {
  runtime::ConcurrentMachine machine(workers, runtime::MachineOptions{.backend = backend});
  const auto policy = policies::MakeThreadCount();
  const uint64_t total = (1ull << (depth + 1)) - 1;
  {
    runtime::WorkItem root = Item(1, /*units=*/0);  // work_units carries node depth
    machine.queue(0).PushBatchOwner(&root, 1);
  }
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> next_id{2};
  std::vector<runtime::StealCounters> counters(workers);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      runtime::ConcurrentRunQueue& own = machine.queue(w);
      Rng rng(w + 1);
      runtime::StealScratch scratch;
      LoadSnapshot snapshot;
      const runtime::StealOptions options{.recheck = true, .max_batch = 1};
      while (executed.load(std::memory_order_acquire) < total) {
        if (std::optional<runtime::WorkItem> item = own.PopForRun()) {
          const uint64_t node_depth = item->work_units;
          if (node_depth < depth) {
            const uint64_t base = next_id.fetch_add(2, std::memory_order_relaxed);
            const runtime::WorkItem children[2] = {Item(base, node_depth + 1),
                                                   Item(base + 1, node_depth + 1)};
            own.PushBatchOwner(children, 2);
          }
          volatile uint64_t sink = 0;
          for (uint64_t spin = 0; spin < spin_per_item; ++spin) {
            sink = sink + spin;
          }
          own.FinishCurrent();
          executed.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        machine.SnapshotInto(snapshot);
        runtime::StealObservation observation;
        machine.TrySteal(*policy, w, snapshot, rng, options, counters[w], nullptr, nullptr,
                         &observation, &scratch);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  TreeResult result;
  result.backend = runtime::QueueBackendName(backend);
  result.total_items = total;
  for (const runtime::StealCounters& c : counters) {
    result.steal_successes += c.successes;
  }
  result.steal_bound = 64ull * workers * depth;
  result.items_per_ms = ms > 0 ? static_cast<double>(total) / ms : 0.0;
  result.within_bound = result.steal_successes <= result.steal_bound;
  return result;
}

std::string FlagValue(int argc, char** argv, const char* name, const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

int Main(int argc, char** argv) {
  const uint32_t workers =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "workers", "8").c_str()));
  const uint64_t items =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "items", "24000").c_str()));
  // ~1000 calibrated spins per item: heavy enough that the run outlives
  // thread startup and the hot queue stays contended, light enough that
  // scheduling overhead (what E14 measures) is a visible fraction.
  const uint64_t units =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "units", "20").c_str()));
  const uint64_t spin =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "spin", "50").c_str()));
  const int repeat = std::atoi(FlagValue(argc, argv, "repeat", "3").c_str());
  const std::string out = FlagValue(argc, argv, "out", "BENCH_e14_throughput.json");

  bench::Section("E14a — steady-state allocation audit (selection + steal)");
  const AllocAudit audit = RunAllocAudit(20000);
  const double per_attempt =
      static_cast<double>(audit.allocs) / static_cast<double>(audit.attempts);
  bench::PrintTable(
      {"attempts", "successes", "items moved", "heap allocs", "allocs/attempt"},
      {{F("%llu", (unsigned long long)audit.attempts),
        F("%llu", (unsigned long long)audit.successes),
        F("%llu", (unsigned long long)audit.items_moved),
        F("%llu", (unsigned long long)audit.allocs), F("%.6f", per_attempt)}});
  if (audit.allocs != 0) {
    bench::Note("FAIL: the steal hot path allocated in steady state");
  } else {
    bench::Note("zero heap allocations across all measured attempts");
  }

  bench::Section(F(
      "E14b — overloaded producer, %u workers, %llu items x %llu units on queue 0, spin %llu",
      workers, (unsigned long long)items, (unsigned long long)units, (unsigned long long)spin));
  std::vector<ModeResult> modes;
  modes.push_back(RunMode("steal_one", workers, items, units, spin, 1, false, repeat));
  modes.push_back(RunMode("steal_half", workers, items, units, spin, 8, false, repeat));
  modes.push_back(RunMode("locked_selection", workers, items, units, spin, 1, true, repeat));
  modes.push_back(RunMode("chase_lev_steal_one", workers, items, units, spin, 1, false, repeat,
                          runtime::QueueBackend::kChaseLev));
  modes.push_back(RunMode("chase_lev_steal_half", workers, items, units, spin, 8, false, repeat,
                          runtime::QueueBackend::kChaseLev));
  std::vector<std::vector<std::string>> rows;
  for (const ModeResult& m : modes) {
    rows.push_back({m.mode, F("%.1f", m.items_per_ms),
                    F("%llu", (unsigned long long)m.steal_actions),
                    F("%llu", (unsigned long long)m.items_stolen),
                    F("%llu", (unsigned long long)m.failed_recheck)});
  }
  bench::PrintTable({"mode", "items/ms", "steal actions", "items stolen", "failed recheck"},
                    rows);
  bench::Note("work-bound operating point: per-item spin dominates, backends converge");

  bench::Section("E14b — batch-cap sweep (steal-half cap 1..16)");
  std::vector<ModeResult> sweep;
  for (uint32_t cap : {1u, 2u, 4u, 8u, 16u}) {
    sweep.push_back(RunMode(F("cap_%u", cap), workers, items, units, spin, cap, false, repeat));
  }
  rows.clear();
  for (const ModeResult& m : sweep) {
    rows.push_back({m.mode, F("%.1f", m.items_per_ms),
                    F("%llu", (unsigned long long)m.steal_actions),
                    F("%llu", (unsigned long long)m.items_stolen)});
  }
  bench::PrintTable({"cap", "items/ms", "steal actions", "items stolen"}, rows);

  // The backend axis proper: 1-unit items with no spin, so per-item cost IS
  // the synchronization substrate (pop + finish + steal traffic). This is
  // the operating point where replacing the lock+seqlock pair with the
  // Chase-Lev deque must pay for itself — the gate in
  // bench/e14_throughput_floor.json reads these numbers.
  const uint64_t sync_items =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "sync-items", "200000").c_str()));
  bench::Section(F("E14d — sync-bound backend axis, %u workers, %llu items x 1 unit, spin 0",
                   workers, (unsigned long long)sync_items));
  std::vector<ModeResult> sync_modes;
  sync_modes.push_back(RunMode("steal_one", workers, sync_items, 1, 0, 1, false, repeat));
  sync_modes.push_back(RunMode("steal_half", workers, sync_items, 1, 0, 8, false, repeat));
  sync_modes.push_back(RunMode("chase_lev_steal_one", workers, sync_items, 1, 0, 1, false,
                               repeat, runtime::QueueBackend::kChaseLev));
  sync_modes.push_back(RunMode("chase_lev_steal_half", workers, sync_items, 1, 0, 8, false,
                               repeat, runtime::QueueBackend::kChaseLev));
  rows.clear();
  for (const ModeResult& m : sync_modes) {
    rows.push_back({m.mode, F("%.1f", m.items_per_ms),
                    F("%llu", (unsigned long long)m.steal_actions),
                    F("%llu", (unsigned long long)m.items_stolen),
                    F("%llu", (unsigned long long)m.failed_recheck)});
  }
  bench::PrintTable({"mode", "items/ms", "steal actions", "items stolen", "failed recheck"},
                    rows);
  double chase_lev_ratio = 0.0;
  {
    double locked_half = 0.0;
    double chase_half = 0.0;
    for (const ModeResult& m : sync_modes) {
      if (m.mode == "steal_half") locked_half = m.items_per_ms;
      if (m.mode == "chase_lev_steal_half") chase_half = m.items_per_ms;
    }
    if (locked_half > 0) {
      chase_lev_ratio = chase_half / locked_half;
      bench::Note(F("chase_lev_steal_half / steal_half = %.2fx", chase_lev_ratio));
    }
  }

  const uint32_t tree_depth =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "tree-depth", "13").c_str()));
  const uint64_t tree_spin =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "tree-spin", "2000").c_str()));
  bench::Section(F("E14c — tree steal bound, depth %u (%llu items), %u workers", tree_depth,
                   (unsigned long long)((1ull << (tree_depth + 1)) - 1), workers));
  std::vector<TreeResult> trees;
  trees.push_back(RunTreeBound(runtime::QueueBackend::kLocked, workers, tree_depth, tree_spin));
  trees.push_back(RunTreeBound(runtime::QueueBackend::kChaseLev, workers, tree_depth, tree_spin));
  rows.clear();
  for (const TreeResult& t : trees) {
    rows.push_back({t.backend, F("%.1f", t.items_per_ms),
                    F("%llu", (unsigned long long)t.steal_successes),
                    F("%llu", (unsigned long long)t.steal_bound),
                    t.within_bound ? "yes" : "NO"});
  }
  bench::PrintTable({"backend", "items/ms", "steal successes", "64*W*D bound", "within"}, rows);
  // Only the Chase-Lev backend promises the Leiserson-Schardl-Suksompong
  // steal bound: its owner runs depth-first (LIFO bottom) while thieves take
  // the shallowest node (FIFO top), so every steal moves a whole subtree.
  // The locked queue runs the frontier breadth-first and thieves take the
  // NEWEST (deepest) entries — steals move leaves and the count is
  // unbounded in depth. Its row is the ablation contrast, not a gate.
  bool tree_bound_ok = true;
  for (const TreeResult& t : trees) {
    if (t.backend == "chase_lev") {
      tree_bound_ok &= t.within_bound;
    }
  }
  if (!tree_bound_ok) {
    bench::Note("FAIL: chase_lev steal count exceeded the O(W*depth) bound");
  }

  // Machine-readable summary (CI perf-smoke artifact + floor check).
  std::string json = F(
      "{\"experiment\":\"e14_throughput\",\"workers\":%u,\"items\":%llu,\"units\":%llu,"
      "\"spin\":%llu,"
      "\"alloc_audit\":{\"attempts\":%llu,\"successes\":%llu,\"items_moved\":%llu,"
      "\"heap_allocs\":%llu,\"allocs_per_attempt\":%.6f},\"modes\":[",
      workers, (unsigned long long)items, (unsigned long long)units, (unsigned long long)spin,
      (unsigned long long)audit.attempts, (unsigned long long)audit.successes,
      (unsigned long long)audit.items_moved, (unsigned long long)audit.allocs, per_attempt);
  for (size_t i = 0; i < modes.size(); ++i) {
    json += F("%s{\"mode\":\"%s\",\"items_per_ms\":%.2f,\"steal_actions\":%llu,"
              "\"items_stolen\":%llu,\"failed_recheck\":%llu}",
              i ? "," : "", modes[i].mode.c_str(), modes[i].items_per_ms,
              (unsigned long long)modes[i].steal_actions,
              (unsigned long long)modes[i].items_stolen,
              (unsigned long long)modes[i].failed_recheck);
  }
  json += F("],\"sync_bound\":{\"items\":%llu,\"chase_lev_ratio\":%.3f,\"modes\":[",
            (unsigned long long)sync_items, chase_lev_ratio);
  for (size_t i = 0; i < sync_modes.size(); ++i) {
    json += F("%s{\"mode\":\"%s\",\"items_per_ms\":%.2f,\"steal_actions\":%llu,"
              "\"items_stolen\":%llu,\"failed_recheck\":%llu}",
              i ? "," : "", sync_modes[i].mode.c_str(), sync_modes[i].items_per_ms,
              (unsigned long long)sync_modes[i].steal_actions,
              (unsigned long long)sync_modes[i].items_stolen,
              (unsigned long long)sync_modes[i].failed_recheck);
  }
  json += "]},\"batch_sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    json += F("%s{\"cap\":\"%s\",\"items_per_ms\":%.2f,\"items_stolen\":%llu}", i ? "," : "",
              sweep[i].mode.c_str(), sweep[i].items_per_ms,
              (unsigned long long)sweep[i].items_stolen);
  }
  json += F("],\"tree\":{\"depth\":%u,\"spin\":%llu,\"runs\":[", tree_depth,
            (unsigned long long)tree_spin);
  for (size_t i = 0; i < trees.size(); ++i) {
    json += F("%s{\"backend\":\"%s\",\"items\":%llu,\"items_per_ms\":%.2f,"
              "\"steal_successes\":%llu,\"steal_bound\":%llu,\"within_bound\":%s}",
              i ? "," : "", trees[i].backend.c_str(), (unsigned long long)trees[i].total_items,
              trees[i].items_per_ms, (unsigned long long)trees[i].steal_successes,
              (unsigned long long)trees[i].steal_bound, trees[i].within_bound ? "true" : "false");
  }
  json += "]}}\n";
  if (trace::WriteStringToFile(out, json)) {
    std::printf("\nsummary -> %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "failed to write '%s'\n", out.c_str());
    return 1;
  }
  return (audit.allocs == 0 && tree_bound_ok) ? 0 : 1;
}

}  // namespace
}  // namespace optsched

int main(int argc, char** argv) { return optsched::Main(argc, argv); }
