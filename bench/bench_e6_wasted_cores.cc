// Experiment E6 — wasted cores: CFS-like heuristics vs proven policies
// (paper §1, citing Lozi et al. EuroSys'16).
//
// Paper claims: "The default Linux scheduler (CFS) has been shown to leave
// cores idle while threads are waiting in runqueues ... we have observed
// many-fold performance degradation in the case of scientific applications,
// and up to 25% decrease in throughput for realistic database workloads."
//
// Reproduction (simulator, 2 NUMA nodes x 16 cores): a fork-join "scientific"
// workload and an OLTP "database" workload, each run under (a) the CFS-like
// policy (group-average thresholding + designated-core cross-group balancing,
// sticky last-cpu wakeups), (b) the proven Listing-1 policy, and (c) the
// proven hierarchical policy. We report makespan / throughput and the
// wasted-core time fraction. Absolute numbers are simulator-scale; the
// *shape* — CFS-like materially worse, proven policies near-zero waste — is
// the reproduced result.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/locality.h"
#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

using bench::F;
using policies::GroupMap;

struct Candidate {
  std::string label;
  std::shared_ptr<const BalancePolicy> policy;
};

std::vector<Candidate> Candidates(const Topology& topo) {
  return {
      {"cfs-like", policies::MakeCfsLike(GroupMap::ByNode(topo))},
      {"thread-count (proven)", policies::MakeThreadCount()},
      {"hierarchical (proven)", policies::MakeHierarchical(GroupMap::ByNode(topo))},
  };
}

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  const Topology topo = Topology::Numa(2, 16);

  bench::Section("E6a: fork-join scientific workload (8 phases x 64 tasks, forked on cpu0)");
  {
    std::vector<std::vector<std::string>> rows;
    double proven_makespan = 0.0;
    for (const auto& candidate : Candidates(topo)) {
      sim::SimConfig config;
      config.max_time_us = 3'000'000'000;
      config.lb_period_us = 4'000;
      config.wake_placement = sim::WakePlacement::kLastCpu;
      sim::Simulator s(topo, candidate.policy, config, 21);
      workload::ForkJoinConfig wl;
      wl.num_phases = 8;
      wl.tasks_per_phase = 64;
      // Short phases: the cost of *spreading* the fork dominates, as in the
      // barrier-bound NAS applications of Lozi et al.
      wl.task_service_us = 5'000;
      wl.jitter_frac = 0.2;
      auto keepalive = workload::InstallForkJoin(s, wl);
      s.Run();
      const double makespan_ms = static_cast<double>(s.metrics().makespan_us) / 1000.0;
      if (candidate.label == "thread-count (proven)") {
        proven_makespan = makespan_ms;
      }
      rows.push_back({candidate.label, F("%.1f", makespan_ms),
                      F("%.1f%%", s.accounting().wasted_fraction() * 100.0),
                      F("%.1f%%", s.accounting().utilization() * 100.0),
                      F("%llu", static_cast<unsigned long long>(s.metrics().migrations)),
                      F("%llu", static_cast<unsigned long long>(s.metrics().failed_steals))});
    }
    bench::PrintTable({"policy", "makespan_ms", "wasted_time", "utilization", "migrations",
                       "failed_steals"},
                      rows);
    if (proven_makespan > 0) {
      bench::Note(F("(ideal lower bound: 8 phases x 64 tasks x 5ms / 32 cpus = %.1f ms)",
                    8.0 * 64.0 * 5.0 / 32.0));
    }
  }

  bench::Section(
      "E6b: OLTP database workload (open system: transactions arrive on node 0 only)");
  {
    // Connections are accepted on node 0 (the node holding the NIC / listener
    // in the Lozi et al. TPC-H setup): every transaction task is spawned on a
    // node-0 runqueue and runs ~10ms of CPU. Offered load ~30 cores' worth on
    // a 32-core machine, so throughput is gated by how fast the balancer
    // drains node 0 into node 1. CFS-like cross-node stealing (designated
    // core only, average-thresholded) is rate-limited; the proven policies
    // let every idle core pull work each round.
    std::vector<std::vector<std::string>> rows;
    uint64_t proven_txns = 0;
    uint64_t cfs_txns = 0;
    for (const auto& candidate : Candidates(topo)) {
      sim::SimConfig config;
      config.max_time_us = 5'000'000;
      config.lb_period_us = 4'000;
      config.wake_placement = sim::WakePlacement::kLastCpu;
      sim::Simulator s(topo, candidate.policy, config, 22);
      Rng arrivals(97);
      double t = 0.0;
      uint32_t next_cpu = 0;
      while (t < 5'000'000.0) {
        t += arrivals.NextExponential(3.0 / 1000.0);  // 3 transactions per ms
        if (t >= 5'000'000.0) {
          break;
        }
        sim::TaskSpec spec;
        spec.total_service_us = std::max<uint64_t>(
            1, static_cast<uint64_t>(arrivals.NextExponential(1.0 / 10'000.0)));
        spec.home_node = 0;
        s.Submit(spec, static_cast<sim::SimTime>(t), /*cpu_hint=*/next_cpu++ % 16);
      }
      s.RunUntil(config.max_time_us);
      const uint64_t txns = s.metrics().tasks_completed;
      if (candidate.label == "thread-count (proven)") {
        proven_txns = txns;
      }
      if (candidate.label == "cfs-like") {
        cfs_txns = txns;
      }
      rows.push_back(
          {candidate.label, F("%llu", static_cast<unsigned long long>(txns)),
           F("%.2f", static_cast<double>(txns) / 5000.0),
           F("%.1f", s.metrics().completion_latency_us.mean() / 1000.0),
           F("%.1f%%", s.accounting().wasted_fraction() * 100.0),
           F("%.1f%%", s.accounting().utilization() * 100.0),
           F("%llu", static_cast<unsigned long long>(s.metrics().migrations))});
    }
    bench::PrintTable({"policy", "transactions", "txn/ms", "mean_latency_ms", "wasted_time",
                       "utilization", "migrations"},
                      rows);
    if (proven_txns > 0 && cfs_txns > 0) {
      bench::Note(F("cfs-like throughput loss vs proven: %.1f%% (paper reports up to 25%%)",
                    100.0 * (1.0 - static_cast<double>(cfs_txns) /
                                       static_cast<double>(proven_txns))));
    }
  }

  bench::Section("E6c: persistent starvation fixpoint (analytic shape from cfs_like.h)");
  {
    // Node 0: one idle core + 15 singly-loaded; node 1: one doubly-loaded +
    // 15 singly-loaded. CFS-like admits no steal anywhere; the proven policy
    // clears it in one round.
    std::vector<int64_t> loads(32, 1);
    loads[0] = 0;
    loads[16] = 2;
    std::vector<std::vector<std::string>> rows;
    for (const auto& candidate : Candidates(topo)) {
      MachineState machine = MachineState::FromLoads(loads);
      LoadBalancer balancer(candidate.policy, &topo);
      Rng rng(3);
      uint64_t rounds = 0;
      while (!machine.WorkConserved() && rounds < 50) {
        balancer.RunRound(machine, rng);
        ++rounds;
      }
      rows.push_back({candidate.label,
                      machine.WorkConserved() ? F("%llu", static_cast<unsigned long long>(rounds))
                                              : std::string(">50 (starved forever)")});
    }
    bench::PrintTable({"policy", "rounds to work conservation"}, rows);
  }

  bench::Section("E6d: migration costs — locality-aware CHOICE under cold-cache penalties");
  {
    // Paper 5: NUMA/cache-aware placement lives in the choice step "without
    // adding any complexity to the proofs". With a cold-cache penalty per
    // topology distance, the choice step's quality becomes measurable:
    // identical piles on each node's first CPU; the flat max-load choice
    // tie-breaks onto node 0 so node-1 thieves raid cross-node; nearest-
    // first drains locally. Same filter, same audit, different makespan.
    const Topology topo2 = Topology::Numa(2, 8);
    std::vector<std::vector<std::string>> rows;
    struct Entry {
      const char* label;
      std::shared_ptr<const BalancePolicy> policy;
    };
    const Entry entries[] = {
        {"thread-count (flat max-load choice)", policies::MakeThreadCount()},
        {"thread-count + numa-nearest choice",
         policies::MakeNumaAware(policies::MakeThreadCount())},
        {"hierarchical choice (by node)",
         policies::MakeHierarchical(policies::GroupMap::ByNode(topo2))},
    };
    for (const Entry& entry : entries) {
      sim::SimConfig config;
      config.max_time_us = 2'000'000'000;
      config.lb_period_us = 1'000;
      config.wake_placement = sim::WakePlacement::kLastCpu;
      config.migration_penalty_us_per_distance = 200;
      sim::Simulator s(topo2, entry.policy, config, 29);
      sim::TaskSpec spec;
      spec.total_service_us = 10'000;
      for (int i = 0; i < 48; ++i) {
        s.Submit(spec, 0, 0);  // node-0 pile
        s.Submit(spec, 0, 8);  // node-1 pile
      }
      s.Run();
      rows.push_back(
          {entry.label, F("%.1f", static_cast<double>(s.metrics().makespan_us) / 1000.0),
           F("%llu", static_cast<unsigned long long>(s.metrics().cold_migrations)),
           F("%.1f", static_cast<double>(s.metrics().migration_penalty_us) / 1000.0),
           F("%llu", static_cast<unsigned long long>(s.metrics().migrations))});
    }
    bench::PrintTable({"policy", "makespan_ms", "cold migrations", "penalty paid (ms)",
                       "steals"},
                      rows);
    bench::Note(F("(ideal: 96 x 10ms / 16 cpus = %.1f ms, penalty 200us x distance; the\n"
                  " filter is shared so all three pass the same audit — only placement\n"
                  " quality differs)",
                  96.0 * 10.0 / 16.0));
  }

  bench::Note("\nExpected shape (paper): the CFS-like baseline leaves cores idle while work\n"
              "waits (many-fold makespan inflation on fork-join, tens of percent of OLTP\n"
              "throughput); the provably work-conserving policies drive wasted-core time\n"
              "to (near) zero on the same workloads.");
  return 0;
}
