// Experiment E10 — the DSL pipeline (paper §1: one policy source compiled to
// a runnable artifact and a verifiable artifact).
//
// Reproduction: compile every shipped policy source; check semantic
// equivalence against the hand-written C++ policies over exhaustive bounded
// states; audit each compiled policy; emit and size both backends (C and
// Leon-style Scala); time each stage.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/wait.h>

#include "bench/bench_util.h"
#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/dsl/codegen.h"
#include "src/dsl/compile.h"
#include "src/verify/audit.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

using bench::F;

// Fraction of (state, thief, stealee) decisions where the two policies agree.
double Agreement(const BalancePolicy& a, const BalancePolicy& b, uint32_t cores,
                 int64_t max_load) {
  verify::Bounds bounds;
  bounds.num_cores = cores;
  bounds.max_load = max_load;
  uint64_t total = 0;
  uint64_t agree = 0;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    const MachineState m = MachineState::FromLoads(loads);
    const LoadSnapshot s = m.Snapshot();
    for (CpuId self = 0; self < cores; ++self) {
      const SelectionView view{.self = self, .snapshot = s, .topology = nullptr};
      for (CpuId other = 0; other < cores; ++other) {
        if (other == self) {
          continue;
        }
        ++total;
        agree += (a.CanSteal(view, other) == b.CanSteal(view, other)) ? 1 : 0;
      }
    }
    return true;
  });
  return total == 0 ? 1.0 : static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;

  bench::Section("E10: DSL source -> interpreter + C + Scala, with audit verdicts");
  std::vector<std::vector<std::string>> rows;

  struct Sample {
    const char* label;
    const char* source;
    std::shared_ptr<const BalancePolicy> reference;  // null: no hand-written twin
  };
  const Sample samples[] = {
      {"thread_count (Listing 1)", dsl::samples::kThreadCount, policies::MakeThreadCount()},
      {"weighted", dsl::samples::kWeighted, policies::MakeWeightedLoad()},
      {"broken (4.3)", dsl::samples::kBroken, policies::MakeBrokenCanSteal()},
      {"numa_aware (5)", dsl::samples::kNumaAware, policies::MakeThreadCount()},
  };

  for (const Sample& sample : samples) {
    const bench::Timer compile_timer;
    const auto compiled = dsl::CompilePolicy(sample.source);
    const double compile_us = compile_timer.ElapsedUs();
    if (!compiled.ok()) {
      rows.push_back({sample.label, "COMPILE ERROR", "-", "-", "-", "-", "-"});
      continue;
    }
    const double agreement =
        sample.reference ? Agreement(*compiled.policy, *sample.reference, 4, 4) : 1.0;

    verify::ConvergenceCheckOptions options;
    options.bounds.num_cores = 3;
    options.bounds.max_load = 3;
    const bench::Timer audit_timer;
    const auto audit = verify::AuditPolicy(*compiled.policy, options);
    const double audit_ms = audit_timer.ElapsedMs();

    const std::string c_code = dsl::EmitC(*compiled.decl);
    const std::string scala_code = dsl::EmitScala(*compiled.decl);
    rows.push_back({sample.label, F("%.0fus", compile_us), F("%.1f%%", agreement * 100.0),
                    audit.work_conserving() ? "WORK-CONSERVING" : "REJECTED",
                    F("%.0fms", audit_ms), F("%zuB", c_code.size()),
                    F("%zuB", scala_code.size())});
  }
  bench::PrintTable({"policy source", "compile", "filter agreement vs C++", "audit verdict",
                     "audit", "C size", "Scala size"},
                    rows);

  bench::Section("E10a: the generated C artifact, compiled and EXECUTED");
  {
    // EmitCDemo wraps the generated policy in a self-contained C program
    // running the paper's 3-core concurrent scenario. The C compiler and the
    // exit code close the loop with zero dependence on this C++ code base.
    if (std::system("cc --version > /dev/null 2>&1") != 0) {
      bench::Note("(no host C compiler; skipped)");
    } else {
      std::vector<std::vector<std::string>> rows;
      for (const Sample& sample : samples) {
        const auto compiled = dsl::CompilePolicy(sample.source);
        if (!compiled.ok()) {
          continue;
        }
        const std::string src = "/tmp/optsched_demo.c";
        const std::string bin = "/tmp/optsched_demo";
        {
          std::ofstream out(src);
          out << dsl::EmitCDemo(*compiled.decl);
        }
        const bench::Timer timer;
        const int build_rc =
            std::system(("cc -std=c11 -O2 -o " + bin + " " + src + " 2>/dev/null").c_str());
        const double cc_ms = timer.ElapsedMs();
        std::string verdict = "cc FAILED";
        if (build_rc == 0) {
          const int run_rc = std::system((bin + " > /dev/null 2>&1").c_str());
          verdict = WEXITSTATUS(run_rc) == 0 ? "work-conserved" : "LIVELOCK (exit 1)";
        }
        rows.push_back({sample.label, F("%.0fms", cc_ms), verdict});
      }
      bench::PrintTable({"policy source", "cc", "generated demo outcome (0,1,2 scenario)"},
                        rows);
    }
  }

  bench::Section("E10b: generated Scala (Listing-1 policy, Leon-ready)");
  {
    const auto compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
    if (compiled.ok()) {
      bench::Note(dsl::EmitScala(*compiled.decl));
    }
  }

  bench::Note("Expected shape (paper): the same DSL source yields (i) an executable policy\n"
              "bit-identical in behaviour to the hand-written one, (ii) kernel-style C, and\n"
              "(iii) Leon-style Scala with Lemma 1 stated; the broken source compiles fine\n"
              "but is rejected by the verifier — the toolchain, not the syntax, is the gate.");
  return 0;
}
