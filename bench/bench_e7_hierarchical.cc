// Experiment E7 — hierarchical load balancing (paper §5, future work).
//
// Paper direction: "extend these abstractions to include hierarchical load
// balancing, for instance to allow balancing load between groups of cores,
// and then inside groups, instead of balancing load directly between
// individual cores" — while keeping the proofs modular.
//
// Reproduction: (a) the sound construction (hierarchy in the CHOICE step)
// passes the full audit at every group size with the same obligations as the
// flat policy; (b) the tempting group-sum FILTER is rejected (Lemma-1
// counterexample; uneven groups yield a starvation fixpoint); (c) scaling:
// hierarchical choice keeps steals local (cheaper migrations) with the same
// convergence as flat balancing as machines grow.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/conservation.h"
#include "src/core/hier_balancer.h"
#include "src/stats/summary.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/audit.h"

namespace optsched {
namespace {

using bench::F;
using policies::GroupMap;

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;

  bench::Section("E7a: audit verdicts, flat vs hierarchical-choice vs group-sum-filter");
  {
    std::vector<std::vector<std::string>> rows;
    verify::ConvergenceCheckOptions options;
    options.bounds.num_cores = 4;
    options.bounds.max_load = 3;
    struct Entry {
      std::string label;
      std::shared_ptr<const BalancePolicy> policy;
    };
    const Entry entries[] = {
        {"flat thread-count", policies::MakeThreadCount()},
        {"hierarchical (choice-level, 2 groups)",
         policies::MakeHierarchical(GroupMap::Contiguous(4, 2))},
        {"group-sum filter (2+2)", policies::MakeGroupSum(GroupMap::Contiguous(4, 2))},
        {"group-sum filter (3+1 uneven)",
         policies::MakeGroupSum(GroupMap::Contiguous(4, 3))},
    };
    for (const Entry& entry : entries) {
      const bench::Timer timer;
      const auto audit = verify::AuditPolicy(*entry.policy, options);
      rows.push_back({entry.label, audit.lemma1.holds ? "holds" : "VIOLATED",
                      audit.concurrent.result.holds ? "holds" : "VIOLATED",
                      audit.work_conserving() ? "WORK-CONSERVING" : "REJECTED",
                      F("%.1f", timer.ElapsedMs())});
    }
    bench::PrintTable({"construction", "lemma1", "AF(work-conserved)", "verdict", "audit_ms"},
                      rows);

    verify::Bounds bounds;
    bounds.num_cores = 4;
    bounds.max_load = 3;
    const auto ce = verify::CheckLemma1(*policies::MakeGroupSum(GroupMap::Contiguous(4, 2)),
                                        bounds);
    bench::Note("group-sum Lemma-1 counterexample: " +
                (ce.counterexample.has_value() ? ce.counterexample->ToString()
                                               : std::string("<none>")));
  }

  bench::Section("E7b: uneven groups -> starvation fixpoint for the group-sum filter");
  {
    // Groups {0..3} and {4,5}; loads (0,1,1,1 | 2,1): sums 3 vs 3.
    const auto group_sum = policies::MakeGroupSum(GroupMap::Contiguous(6, 4));
    const auto hierarchical = policies::MakeHierarchical(GroupMap::Contiguous(6, 4));
    std::vector<std::vector<std::string>> rows;
    for (const auto& [label, policy] :
         {std::pair<std::string, std::shared_ptr<const BalancePolicy>>{"group-sum", group_sum},
          {"hierarchical-choice", hierarchical}}) {
      MachineState machine = MachineState::FromLoads({0, 1, 1, 1, 2, 1});
      LoadBalancer balancer(policy);
      Rng rng(1);
      uint64_t rounds = 0;
      while (!machine.WorkConserved() && rounds < 50) {
        balancer.RunRound(machine, rng);
        ++rounds;
      }
      rows.push_back({label, machine.WorkConserved()
                                 ? F("%llu", static_cast<unsigned long long>(rounds))
                                 : std::string(">50 (starved forever)")});
    }
    bench::PrintTable({"construction", "rounds to work conservation"}, rows);
  }

  bench::Section("E7c: scaling sweep, flat vs hierarchical choice (64 random starts each)");
  {
    std::vector<std::vector<std::string>> rows;
    for (uint32_t cores : {16u, 64u, 256u}) {
      const uint32_t group_size = cores / 8;
      for (const bool hierarchical : {false, true}) {
        const auto policy =
            hierarchical
                ? std::shared_ptr<const BalancePolicy>(
                      policies::MakeHierarchical(GroupMap::Contiguous(cores, group_size)))
                : std::shared_ptr<const BalancePolicy>(policies::MakeThreadCount());
        Rng rng(31 + cores);
        stats::Summary rounds_summary;
        stats::Summary local_frac;
        double total_round_ms = 0.0;
        uint64_t total_rounds = 0;
        for (int trial = 0; trial < 64; ++trial) {
          std::vector<int64_t> loads(cores, 0);
          for (uint32_t c = 0; c < cores; c += 8) {
            loads[c] = rng.NextInRange(4, 12);  // every 8th core overloaded
          }
          MachineState machine = MachineState::FromLoads(loads);
          LoadBalancer balancer(policy);
          uint64_t local_steals = 0;
          uint64_t steals = 0;
          const bench::Timer timer;
          uint64_t rounds = 0;
          while (!machine.WorkConserved() && rounds < 200) {
            const RoundResult r = balancer.RunRound(machine, rng);
            ++rounds;
            for (const CoreAction& action : r.actions) {
              if (action.outcome == StealOutcome::kStole) {
                ++steals;
                if (*action.victim / group_size == action.thief / group_size) {
                  ++local_steals;
                }
              }
            }
          }
          total_round_ms += timer.ElapsedMs();
          total_rounds += rounds;
          rounds_summary.Add(static_cast<double>(rounds));
          if (steals > 0) {
            local_frac.Add(static_cast<double>(local_steals) / static_cast<double>(steals));
          }
        }
        rows.push_back({F("%u", cores), hierarchical ? "hierarchical" : "flat",
                        F("%.1f", rounds_summary.mean()),
                        F("%.0f%%", local_frac.mean() * 100.0),
                        F("%.3f", total_rounds == 0
                                      ? 0.0
                                      : total_round_ms / static_cast<double>(total_rounds))});
      }
    }
    bench::PrintTable({"cores", "choice", "mean_rounds_to_WC", "intra-group steals",
                       "ms_per_round"},
                      rows);
  }

  bench::Section(
      "E7d: multi-level engine over the sched-domain ladder (SMT -> LLC -> MACHINE)");
  {
    // The full 5 construction: each core balances its innermost domain first
    // and escalates only when that scope is balanced. Same filter, same
    // steal phase as the audited flat engine; per-level stats show where
    // migrations actually happen.
    const Topology topo = Topology::Hierarchical(2, 1, 8, 2);  // 32 cpus, 3 levels
    HierarchicalBalancer engine(policies::MakeThreadCount(), topo);
    Rng rng(83);
    uint64_t total_rounds = 0;
    for (int trial = 0; trial < 64; ++trial) {
      std::vector<int64_t> loads(32, 0);
      for (int c = 0; c < 8; ++c) {
        loads[static_cast<size_t>(rng.NextBelow(32))] = rng.NextInRange(3, 9);
      }
      MachineState machine = MachineState::FromLoads(loads);
      uint64_t rounds = 0;
      while (!machine.WorkConserved() && rounds < 200) {
        engine.RunRound(machine, rng);
        ++rounds;
      }
      total_rounds += rounds;
    }
    std::vector<std::vector<std::string>> rows;
    for (const LevelStats& level : engine.level_stats()) {
      rows.push_back({level.name, F("%llu", static_cast<unsigned long long>(level.attempts)),
                      F("%llu", static_cast<unsigned long long>(level.successes)),
                      F("%llu", static_cast<unsigned long long>(level.failures))});
    }
    bench::PrintTable({"ladder level", "attempts", "steals", "failures"}, rows);
    bench::Note(F("(64 random imbalances cleared in %.1f rounds on average; most steals\n"
                  " resolve at the innermost level that still has imbalance)",
                  static_cast<double>(total_rounds) / 64.0));
  }

  bench::Note("\nExpected shape (paper 5): hierarchy implemented in the choice step keeps\n"
              "every proof intact ('without adding any complexity to the proofs') and makes\n"
              "most steals group-local; pushing the hierarchy into the FILTER (group sums)\n"
              "breaks Lemma 1 and, with uneven groups, work conservation itself.");
  return 0;
}
