// Experiment E15 — overload-resilient serving ingress (docs/serving.md).
//
// An open-loop Poisson arrival process over >= 1M keyed sessions drives the
// serving front end: N connection shards Offer() keyed items through the
// IngressRouter into per-worker bounded mailboxes, which the executor's
// workers drain into their runqueues and execute. Open loop means arrivals
// do NOT slow down when the system falls behind — the defining property of
// serving overload, and the reason admission control exists.
//
//   E15a (saturation probe): the shed policy offered effectively unbounded
//       load; whatever the workers execute per second IS the saturation
//       throughput. All load factors below are multiples of this measured
//       capacity, so the experiment is calibrated to the machine it runs on.
//   E15b (policy x load sweep): each admission policy (shed / spill /
//       block) runs at sub-saturation (0.8x) and overload (2.0x). Reported
//       per run: admitted/shed/spilled counts, executed throughput, the
//       end-to-end sojourn percentiles (p50/p99/p999, arrival stamp ->
//       execution finish) of the ADMITTED population, and the admission
//       decision latency.
//
// Graceful-degradation criterion (the E15 acceptance gate, re-checked in
// CI): under shed at 2x overload, the admitted population's p99 sojourn must
// stay within 5x of its 0.8x value — the whole point of bounded mailboxes is
// that overload turns into counted drops at the edge, not into unbounded
// latency for everyone. Exit code 1 when the criterion fails.
//
// Writes BENCH_e15_serving.json (override with --out=PATH).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/core/policies/thread_count.h"
#include "src/ingress/admission.h"
#include "src/ingress/mailbox.h"
#include "src/ingress/router.h"
#include "src/runtime/executor.h"
#include "src/trace/chrome_trace.h"

namespace optsched {
namespace {

using bench::F;

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

struct ServingParams {
  uint32_t workers = 8;
  uint32_t shards = 4;
  uint64_t sessions = 1ull << 20;  // >= 1M distinct keyed sessions
  uint32_t mailbox_capacity = 256;
  uint64_t spin_per_unit = 40;
  uint64_t work_units = 1;
  uint64_t duration_ms = 400;
  uint64_t seed = 1;
};

struct ServingResult {
  std::string policy;
  double load_factor = 0.0;  // 0 = saturation probe (unpaced)
  uint64_t offered = 0;
  uint64_t admitted_home = 0;
  uint64_t admitted_spill = 0;
  uint64_t shed = 0;
  uint64_t executed = 0;
  uint64_t queue_residue = 0;    // runqueued at the deadline
  int64_t mailbox_residue = 0;   // still mailbox-resident at the deadline
  uint64_t distinct_sessions = 0;
  double executed_per_s = 0.0;
  double offered_per_s = 0.0;
  double drop_rate = 0.0;   // shed / offered
  double spill_rate = 0.0;  // admitted_spill / offered
  double sojourn_p50_us = 0.0;
  double sojourn_p99_us = 0.0;
  double sojourn_p999_us = 0.0;
  double admission_p50_us = 0.0;
  double admission_p99_us = 0.0;
  uint64_t submit_wakeups = 0;
  uint64_t persistent_watchdog_violations = 0;
  bool conserved = true;  // admitted == executed + queue residue + mailbox residue
};

// One serving run: `rate_per_s` == 0 means unpaced (each shard offers as
// fast as the router lets it — the saturation probe); otherwise each shard
// runs an independent Poisson arrival process at rate_per_s / shards, and
// open-loop semantics stamp arrival_ns with the SCHEDULED arrival time, so
// queueing delay inside the ingress counts against sojourn.
ServingResult RunServing(const ServingParams& params, ingress::AdmissionPolicy policy,
                         double rate_per_s, double load_factor) {
  ServingResult result;
  result.policy = ingress::AdmissionPolicyName(policy);
  result.load_factor = load_factor;

  ingress::MailboxSet mailboxes(params.workers, params.mailbox_capacity);
  ingress::RouterConfig router_config;
  router_config.num_shards = params.shards;
  router_config.admission.policy = policy;
  router_config.admission.max_spill_hops = 2;
  // Short block deadline: a serving shard can afford to wait out a drain
  // cadence, not a whole scheduling epoch.
  router_config.admission.block_deadline_us = 500;
  router_config.admission.block_poll_us = 20;
  ingress::IngressRouter router(mailboxes, router_config);

  runtime::ExecutorConfig config;
  config.num_workers = params.workers;
  config.spin_per_unit = params.spin_per_unit;
  config.watchdog = true;
  config.seed = params.seed;
  config.ingress = &mailboxes;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  mailboxes.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

  // Per-shard distinct-session tracking by bitmap would cost sessions bits
  // per shard; a shared bitmap of one byte per session is enough (racy
  // writes of `1` are idempotent).
  std::vector<uint8_t> session_touched(params.sessions, 0);

  const auto producer = [&](runtime::Executor& e) {
    std::vector<std::thread> shard_threads;
    for (uint32_t s = 0; s < params.shards; ++s) {
      shard_threads.emplace_back([&, s] {
        Rng rng(params.seed * 7919 + s + 1);
        const double shard_rate = rate_per_s / params.shards;
        uint64_t next_arrival_ns = NowNs();
        uint64_t id = static_cast<uint64_t>(s) << 40;
        while (!e.stopped()) {
          if (rate_per_s > 0) {
            next_arrival_ns += static_cast<uint64_t>(rng.NextExponential(shard_rate) * 1e9);
            // Open loop: never reschedule a late arrival — if the shard fell
            // behind (e.g. it was blocking on a full mailbox), the backlog
            // of due arrivals is offered immediately and their sojourn
            // clocks are already running.
            while (!e.stopped() && NowNs() < next_arrival_ns) {
              std::this_thread::yield();
            }
            if (e.stopped()) {
              break;
            }
          }
          const uint64_t session = rng.NextBelow(params.sessions);
          session_touched[session] = 1;
          router.Offer(s, session,
                       {.id = id++,
                        .work_units = params.work_units,
                        .weight = 1024,
                        .arrival_ns = rate_per_s > 0 ? next_arrival_ns : NowNs()});
        }
      });
    }
    for (auto& t : shard_threads) {
      t.join();
    }
  };

  const runtime::ExecutorReport report = executor.RunFor(params.duration_ms, producer);

  const ingress::ShardStats totals = router.TotalStats();
  result.offered = totals.offered;
  result.admitted_home = totals.admitted_home;
  result.admitted_spill = totals.admitted_spill;
  result.shed = totals.shed;
  for (const auto& w : report.workers) {
    result.executed += w.items_executed;
    result.submit_wakeups += w.submit_wakeups;
  }
  result.queue_residue = report.items_left_unexecuted;
  result.mailbox_residue = mailboxes.TotalPending();
  for (uint8_t touched : session_touched) {
    result.distinct_sessions += touched;
  }
  const double seconds = static_cast<double>(report.wall_time_ns) / 1e9;
  result.executed_per_s = static_cast<double>(result.executed) / seconds;
  result.offered_per_s = static_cast<double>(result.offered) / seconds;
  if (result.offered > 0) {
    result.drop_rate = static_cast<double>(result.shed) / static_cast<double>(result.offered);
    result.spill_rate =
        static_cast<double>(result.admitted_spill) / static_cast<double>(result.offered);
  }
  const stats::LogHistogram sojourn = report.MergedSojournNs();
  result.sojourn_p50_us = sojourn.Percentile(0.50) / 1000.0;
  result.sojourn_p99_us = sojourn.Percentile(0.99) / 1000.0;
  result.sojourn_p999_us = sojourn.Percentile(0.999) / 1000.0;
  result.admission_p50_us = totals.admission_ns.Percentile(0.50) / 1000.0;
  result.admission_p99_us = totals.admission_ns.Percentile(0.99) / 1000.0;
  result.persistent_watchdog_violations = report.watchdog.persistent_violations;

  const uint64_t admitted = result.admitted_home + result.admitted_spill;
  result.conserved = admitted == result.executed + result.queue_residue +
                                     static_cast<uint64_t>(result.mailbox_residue);
  return result;
}

std::string FlagValue(int argc, char** argv, const char* name, const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::vector<std::string> ResultRow(const ServingResult& r) {
  return {r.policy,
          r.load_factor > 0 ? F("%.1fx", r.load_factor) : "max",
          F("%llu", (unsigned long long)r.offered),
          F("%.0f%%", 100.0 * (1.0 - r.drop_rate)),
          F("%.1f%%", 100.0 * r.spill_rate),
          F("%.0fk/s", r.executed_per_s / 1000.0),
          F("%.0f", r.sojourn_p50_us),
          F("%.0f", r.sojourn_p99_us),
          F("%.0f", r.sojourn_p999_us),
          F("%.1f", r.admission_p99_us),
          r.conserved ? "yes" : "NO"};
}

std::string ResultJson(const ServingResult& r) {
  return F(
      "{\"policy\":\"%s\",\"load_factor\":%.2f,\"offered\":%llu,"
      "\"admitted_home\":%llu,\"admitted_spill\":%llu,\"shed\":%llu,"
      "\"executed\":%llu,\"queue_residue\":%llu,\"mailbox_residue\":%lld,"
      "\"distinct_sessions\":%llu,\"offered_per_s\":%.0f,\"executed_per_s\":%.0f,"
      "\"drop_rate\":%.4f,\"spill_rate\":%.4f,"
      "\"sojourn_us\":{\"p50\":%.1f,\"p99\":%.1f,\"p999\":%.1f},"
      "\"admission_us\":{\"p50\":%.2f,\"p99\":%.2f},"
      "\"submit_wakeups\":%llu,\"persistent_watchdog_violations\":%llu,"
      "\"conserved\":%s}",
      r.policy.c_str(), r.load_factor, (unsigned long long)r.offered,
      (unsigned long long)r.admitted_home, (unsigned long long)r.admitted_spill,
      (unsigned long long)r.shed, (unsigned long long)r.executed,
      (unsigned long long)r.queue_residue, (long long)r.mailbox_residue,
      (unsigned long long)r.distinct_sessions, r.offered_per_s, r.executed_per_s, r.drop_rate,
      r.spill_rate, r.sojourn_p50_us, r.sojourn_p99_us, r.sojourn_p999_us, r.admission_p50_us,
      r.admission_p99_us, (unsigned long long)r.submit_wakeups,
      (unsigned long long)r.persistent_watchdog_violations, r.conserved ? "true" : "false");
}

int Main(int argc, char** argv) {
  ServingParams params;
  params.workers =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "workers", "8").c_str()));
  params.shards =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "shards", "4").c_str()));
  params.sessions = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "sessions", "1048576").c_str()));
  params.mailbox_capacity =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "mailbox", "256").c_str()));
  params.spin_per_unit =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "spin", "40").c_str()));
  params.duration_ms =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "duration-ms", "400").c_str()));
  params.seed = static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "seed", "1").c_str()));
  const std::string out = FlagValue(argc, argv, "out", "BENCH_e15_serving.json");

  bench::Section(F("E15a — saturation probe: %u workers, %u shards, unpaced shed load",
                   params.workers, params.shards));
  const ServingResult probe =
      RunServing(params, ingress::AdmissionPolicy::kShed, /*rate_per_s=*/0.0,
                 /*load_factor=*/0.0);
  const double saturation_per_s = probe.executed_per_s;
  bench::Note(F("saturation throughput: %.0f items/s (offered %.0f/s, drop rate %.1f%%)",
                saturation_per_s, probe.offered_per_s, 100.0 * probe.drop_rate));

  bench::Section(F("E15b — policy x load sweep over %llu keyed sessions",
                   (unsigned long long)params.sessions));
  const std::vector<double> load_factors = {0.8, 2.0};
  const std::vector<ingress::AdmissionPolicy> policies = {
      ingress::AdmissionPolicy::kShed, ingress::AdmissionPolicy::kSpillToSibling,
      ingress::AdmissionPolicy::kBlockWithDeadline};
  std::vector<ServingResult> results;
  for (const ingress::AdmissionPolicy policy : policies) {
    for (const double load : load_factors) {
      results.push_back(RunServing(params, policy, saturation_per_s * load, load));
    }
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back(ResultRow(probe));
  for (const ServingResult& r : results) {
    rows.push_back(ResultRow(r));
  }
  bench::PrintTable({"policy", "load", "offered", "admit%", "spill%", "executed", "p50us",
                     "p99us", "p999us", "adm p99us", "conserved"},
                    rows);

  // Graceful degradation: shed keeps the admitted population's tail bounded
  // through 2.5x more offered load than the sub-saturation baseline.
  const auto find = [&](const char* policy, double load) -> const ServingResult* {
    for (const ServingResult& r : results) {
      if (r.policy == policy && r.load_factor == load) {
        return &r;
      }
    }
    return nullptr;
  };
  const ServingResult* shed_low = find("shed", 0.8);
  const ServingResult* shed_high = find("shed", 2.0);
  bool ok = true;
  const double degradation_cap = 5.0;
  // Sub-us p99 floors the ratio denominator at 1us so an idle machine's
  // near-zero baseline cannot fail a perfectly healthy run.
  const double low_p99 = std::max(shed_low->sojourn_p99_us, 1.0);
  const double degradation = shed_high->sojourn_p99_us / low_p99;
  bench::Section("E15 graceful-degradation criterion");
  bench::Note(F("shed p99 sojourn: %.1fus @0.8x -> %.1fus @2.0x (%.2fx, cap %.1fx)",
                shed_low->sojourn_p99_us, shed_high->sojourn_p99_us, degradation,
                degradation_cap));
  if (degradation > degradation_cap) {
    bench::Note("FAIL: overload leaked into the admitted population's tail latency");
    ok = false;
  }
  // The unpaced probe saturates by construction, so its admission path MUST
  // have engaged; this is the robust "shedding works" check. The paced 2.0x
  // run may or may not shed on an oversubscribed machine (the probe
  // under-measures capacity when producers contend with workers for cores),
  // so a dry 2.0x run is only a calibration note, never a failure.
  if (probe.drop_rate <= 0.0) {
    bench::Note("FAIL: the saturation probe shed nothing — admission never engaged");
    ok = false;
  }
  if (shed_high->drop_rate <= 0.0) {
    bench::Note("note: shed@2.0x dropped nothing — saturation was under-measured "
                "(oversubscribed machine); latency gate still applies");
  }
  for (const ServingResult& r : results) {
    if (!r.conserved) {
      bench::Note(F("FAIL: %s@%.1fx lost admitted items", r.policy.c_str(), r.load_factor));
      ok = false;
    }
    if (r.persistent_watchdog_violations > 0) {
      bench::Note(F("FAIL: %s@%.1fx tripped the watchdog persistently", r.policy.c_str(),
                    r.load_factor));
      ok = false;
    }
  }
  if (ok) {
    bench::Note("OK: overload degrades into counted drops/spills, not unbounded latency");
  }

  std::string json =
      F("{\"experiment\":\"e15_serving\",\"workers\":%u,\"shards\":%u,\"sessions\":%llu,"
        "\"mailbox_capacity\":%u,\"spin\":%llu,\"duration_ms\":%llu,"
        "\"saturation_items_per_s\":%.0f,\"degradation_p99_ratio\":%.3f,"
        "\"degradation_cap\":%.1f,\"graceful\":%s,\"probe\":",
        params.workers, params.shards, (unsigned long long)params.sessions,
        params.mailbox_capacity, (unsigned long long)params.spin_per_unit,
        (unsigned long long)params.duration_ms, saturation_per_s, degradation, degradation_cap,
        ok ? "true" : "false");
  json += ResultJson(probe);
  json += ",\"runs\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    json += F("%s", i ? "," : "") + ResultJson(results[i]);
  }
  json += "]}\n";
  if (trace::WriteStringToFile(out, json)) {
    std::printf("\nsummary -> %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "failed to write '%s'\n", out.c_str());
    return 1;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace optsched

int main(int argc, char** argv) { return optsched::Main(argc, argv); }
