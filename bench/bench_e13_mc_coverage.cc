// Experiment E13 — model-checking coverage and interposition overhead
// (docs/model_checking.md).
//
//   E13a (coverage): exhaustive DFS over the real steal protocol (3 workers,
//                    thread-count policy) per preemption bound — schedules
//                    explored per second and the sleep-set pruning ratio
//                    (share of partial executions cut as provably redundant).
//   E13b (sampling): PCT randomized sampling rate on the same harness — the
//                    fast path for spaces exhaustion cannot cover.
//   E13c (overhead): the interposition seam's cost when the checker is NOT
//                    driving: uncontended SpinLock lock/unlock and seqlock
//                    load reads, in ns/op. Build twice (-DOPTSCHED_MC_HOOKS=
//                    ON/OFF) and compare: the null-check seam must be free.
//
// A machine-readable JSON summary is printed at the end for plotting.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/str.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/spinlock.h"

#if OPTSCHED_MC_HOOKS
#include "src/mc/explorer.h"
#include "src/mc/harness.h"
#endif

namespace optsched {
namespace {

using bench::F;
using bench::Section;
using bench::Timer;

#if OPTSCHED_MC_HOOKS
struct CoverageRow {
  uint32_t bound = 0;
  uint64_t explored = 0;
  uint64_t pruned = 0;
  double seconds = 0;
};

std::vector<CoverageRow> RunCoverage(uint32_t max_bound) {
  std::vector<CoverageRow> rows;
  for (uint32_t bound = 0; bound <= max_bound; ++bound) {
    mc::StealHarness::Config config;
    config.mode = "balance";
    config.policy = "thread-count";
    config.initial_loads = {0, 1, 2};
    config.attempts_per_worker = 2;
    mc::StealHarness harness(config);
    mc::DfsExplorer::Options options;
    options.max_preemptions = bound;
    mc::DfsExplorer explorer(options);
    Timer timer;
    const mc::ExploreStats stats =
        explorer.Explore(harness.Factory(), [](const mc::ExecutionResult&, uint32_t) {
          return true;
        });
    rows.push_back(CoverageRow{.bound = bound,
                               .explored = stats.schedules_explored,
                               .pruned = stats.schedules_pruned,
                               .seconds = timer.ElapsedMs() / 1000.0});
  }
  return rows;
}

double RunPctSampling(uint32_t samples, uint64_t* executed_out) {
  mc::StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 1, 2, 0};
  config.attempts_per_worker = 2;
  mc::StealHarness harness(config);
  mc::PctStrategy pct(4, 128, 3, 42);
  Timer timer;
  for (uint32_t i = 0; i < samples; ++i) {
    mc::Scheduler scheduler;
    (void)scheduler.Run(harness.MakeBodies(), pct);
    pct.Reset();
  }
  *executed_out = samples;
  return timer.ElapsedMs() / 1000.0;
}
#endif  // OPTSCHED_MC_HOOKS

// ns/op for an uncontended lock/unlock pair through the (possibly compiled-
// out) interposition seam. volatile sink defeats dead-code elimination.
double LockOverheadNs(uint64_t iters) {
  runtime::SpinLock lock;
  volatile uint64_t sink = 0;
  Timer timer;
  for (uint64_t i = 0; i < iters; ++i) {
    lock.lock();
    sink = sink + 1;
    lock.unlock();
  }
  return timer.ElapsedUs() * 1000.0 / static_cast<double>(iters);
}

double SeqlockReadOverheadNs(uint64_t iters) {
  runtime::ConcurrentRunQueue queue;
  queue.Push(runtime::WorkItem{.id = 1, .work_units = 1, .weight = 1024});
  volatile int64_t sink = 0;
  Timer timer;
  for (uint64_t i = 0; i < iters; ++i) {
    sink = sink + queue.ReadLoad().task_count;
  }
  return timer.ElapsedUs() * 1000.0 / static_cast<double>(iters);
}

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  bench::Section(StrFormat("E13 — model-checker coverage and hook overhead (hooks %s)",
                           OPTSCHED_MC_HOOKS ? "ON" : "OFF"));

  std::string coverage_json = "[]";
  std::string pct_json = "null";
#if OPTSCHED_MC_HOOKS
  {
    bench::Section("E13a — exhaustive DFS coverage (3 workers, thread-count)");
    const auto rows = RunCoverage(2);
    std::vector<std::vector<std::string>> table;
    std::vector<std::string> parts;
    for (const CoverageRow& row : rows) {
      const double total = static_cast<double>(row.explored + row.pruned);
      const double rate = row.seconds > 0 ? total / row.seconds : 0;
      const double pruning = total > 0 ? static_cast<double>(row.pruned) / total : 0;
      table.push_back({StrFormat("%u", row.bound), StrFormat("%llu", (unsigned long long)row.explored),
                       StrFormat("%llu", (unsigned long long)row.pruned),
                       StrFormat("%.0f", rate), StrFormat("%.1f%%", pruning * 100.0)});
      parts.push_back(StrFormat(
          "{\"bound\":%u,\"explored\":%llu,\"pruned\":%llu,\"schedules_per_sec\":%.0f,"
          "\"pruning_ratio\":%.4f}",
          row.bound, (unsigned long long)row.explored, (unsigned long long)row.pruned, rate,
          pruning));
    }
    bench::PrintTable({"preemption bound", "explored", "pruned", "schedules/sec", "pruned share"},
                      table);
    coverage_json = "[" + Join(parts, ",") + "]";
  }
  {
    bench::Section("E13b — PCT randomized sampling (4 workers)");
    uint64_t executed = 0;
    const double seconds = RunPctSampling(512, &executed);
    const double rate = seconds > 0 ? static_cast<double>(executed) / seconds : 0;
    bench::Note(StrFormat("%llu samples in %.3f s = %.0f schedules/sec",
                          (unsigned long long)executed, seconds, rate));
    pct_json = StrFormat("{\"samples\":%llu,\"schedules_per_sec\":%.0f}",
                         (unsigned long long)executed, rate);
  }
#else
  bench::Note("model checker not built (-DOPTSCHED_MC_HOOKS=OFF): coverage sections skipped");
#endif

  bench::Section("E13c — interposition seam overhead (checker not attached)");
  constexpr uint64_t kIters = 2'000'000;
  const double lock_ns = LockOverheadNs(kIters);
  const double read_ns = SeqlockReadOverheadNs(kIters);
  bench::Note(StrFormat("uncontended lock+unlock: %.1f ns/op", lock_ns));
  bench::Note(StrFormat("seqlock load read:       %.1f ns/op", read_ns));

  std::printf(
      "\nJSON: {\"experiment\":\"e13\",\"hooks\":%d,\"coverage\":%s,\"pct\":%s,"
      "\"lock_ns\":%.2f,\"seqlock_read_ns\":%.2f}\n",
      OPTSCHED_MC_HOOKS ? 1 : 0, coverage_json.c_str(), pct_json.c_str(), lock_ns, read_ns);
  return 0;
}
