// Experiment E2 — sequential work conservation (§4.2).
//
// Paper claim: "In a sequential setting, this proof is sufficient to ensure
// that, after one round of load balancing operations on an idle core, if the
// system had an overloaded core, then the idle core has successfully stolen a
// thread" — i.e. sequential rounds converge, and the N of the §3.2 definition
// exists and is small.
//
// Reproduction: (a) exhaustive worst-case N over all bounded start states
// (the verifier's sequential pass); (b) randomized scaling sweep: rounds to
// the first work-conserved state and to full quiescence as machine size and
// load mass grow.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/conservation.h"
#include "src/core/policies/thread_count.h"
#include "src/stats/summary.h"
#include "src/verify/convergence.h"

namespace optsched {
namespace {

using bench::F;

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  bench::Section("E2a: exhaustive worst-case N, sequential rounds (all bounded start states)");
  {
    std::vector<std::vector<std::string>> rows;
    const auto policy = policies::MakeThreadCount();
    for (uint32_t cores : {2u, 3u, 4u, 5u}) {
      for (int64_t max_load : {3ll, 5ll}) {
        verify::ConvergenceCheckOptions options;
        options.bounds.num_cores = cores;
        options.bounds.max_load = max_load;
        const bench::Timer timer;
        const auto result = verify::CheckSequentialConvergence(*policy, options);
        rows.push_back({F("%u", cores), F("%lld", static_cast<long long>(max_load)),
                        F("%llu", static_cast<unsigned long long>(result.result.states_checked)),
                        result.result.holds ? "yes" : "NO",
                        F("%llu", static_cast<unsigned long long>(result.worst_case_rounds)),
                        F("%.1f", timer.ElapsedMs())});
      }
    }
    bench::PrintTable({"cores", "max_load", "start_states", "always_converges", "worst_N", "ms"},
                      rows);
  }

  bench::Section("E2b: randomized scaling sweep (100 random starts per row)");
  {
    std::vector<std::vector<std::string>> rows;
    const auto policy = policies::MakeThreadCount();
    for (uint32_t cores : {4u, 8u, 16u, 32u, 64u, 128u}) {
      for (int64_t tasks_per_core : {2ll, 8ll}) {
        stats::Summary n_rounds;
        stats::Summary steals;
        stats::Summary quiesce_rounds;
        Rng rng(1234 + cores);
        for (int trial = 0; trial < 100; ++trial) {
          // Random state with the given average mass, skewed so imbalance is
          // real (half the cores empty).
          std::vector<int64_t> loads(cores, 0);
          for (uint32_t c = 0; c < cores / 2; ++c) {
            loads[c] = rng.NextInRange(0, 2 * tasks_per_core * 2);
          }
          MachineState machine = MachineState::FromLoads(loads);
          LoadBalancer balancer(policy);
          ConvergenceOptions options;
          options.round.mode = RoundOptions::Mode::kSequential;
          const ConvergenceResult result = RunUntilWorkConserved(balancer, machine, rng, options);
          n_rounds.Add(static_cast<double>(result.rounds));
          steals.Add(static_cast<double>(result.total_successes));
          // Continue to quiescence (full balance).
          const uint64_t q = RunUntilQuiescent(balancer, machine, rng, options.round);
          quiesce_rounds.Add(static_cast<double>(result.rounds + q));
        }
        rows.push_back({F("%u", cores), F("%lld", static_cast<long long>(tasks_per_core)),
                        F("%.1f", n_rounds.mean()), F("%.0f", n_rounds.max()),
                        F("%.1f", steals.mean()), F("%.1f", quiesce_rounds.mean())});
      }
    }
    bench::PrintTable({"cores", "avg_tasks/core", "mean_N", "max_N", "mean_steals",
                       "mean_rounds_to_quiesce"},
                      rows);
  }

  bench::Note("\nExpected shape (paper): N exists for every start state; it stays small and\n"
              "grows mildly with machine size/imbalance mass (each round lets every idle\n"
              "core steal once; the potential argument bounds total steals).");
  return 0;
}
