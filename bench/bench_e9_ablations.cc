// Experiment E9 — design-choice ablations (DESIGN.md D1-D3 + margin).
//
// D1  Filter/choice split: the choice step carries no proof obligations, so
//     swapping placement heuristics must not change verification cost or
//     verdicts ("the exact choice of the core does not matter for the
//     correctness proof").
// D2  Steal-phase re-check (Listing 1 line 12): without it, optimistic
//     decisions execute on stale data; the migration-rule guard then catches
//     them late (under both locks) instead of early.
// D3  Lock-free selection: covered in depth by E5; here we report the
//     verifier's view (the obligations are identical — optimism is modeled,
//     not assumed away).
// M   Filter margin: margin >= 2 is the smallest sound value; larger margins
//     converge to coarser balance in fewer steals.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/conservation.h"
#include "src/stats/summary.h"
#include "src/core/policies/locality.h"
#include "src/core/policies/thread_count.h"
#include "src/runtime/executor.h"
#include "src/sim/simulator.h"
#include "src/verify/audit.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

using bench::F;

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;

  bench::Section("E9a (D1): choice-step heuristic vs verification cost and verdict");
  {
    std::vector<std::vector<std::string>> rows;
    const Topology topo = Topology::Numa(2, 2);
    struct Entry {
      std::string label;
      std::shared_ptr<const BalancePolicy> policy;
    };
    const Entry entries[] = {
        {"choice=max-load (default)", policies::MakeThreadCount()},
        {"choice=numa-nearest", policies::MakeNumaAware(policies::MakeThreadCount())},
        {"choice=uniform-random", policies::MakeRandomChoice(policies::MakeThreadCount())},
    };
    for (const Entry& entry : entries) {
      verify::ConvergenceCheckOptions options;
      options.bounds.num_cores = 4;
      options.bounds.max_load = 3;
      const bench::Timer timer;
      const auto audit = verify::AuditPolicy(*entry.policy, options, &topo);
      rows.push_back({entry.label, audit.work_conserving() ? "WORK-CONSERVING" : "REJECTED",
                      F("%llu", static_cast<unsigned long long>(
                                    audit.lemma1.checks_performed +
                                    audit.steal_safety.checks_performed)),
                      F("%.0f", timer.ElapsedMs())});
    }
    bench::PrintTable({"choice heuristic", "verdict", "filter/steal checks", "audit_ms"}, rows);
    bench::Note("(the filter is shared, so the obligations and the verdict are identical —\n"
                " the choice step is proof-free by construction)");
  }

  bench::Section("E9b (D2): steal-phase re-check on vs off, model (exhaustive small states)");
  {
    // Deterministic view of the ablation: across every 4-core state and many
    // adversarial orders, where do stale-admitted steals get rejected?
    std::vector<std::vector<std::string>> rows;
    for (const bool recheck : {true, false}) {
      uint64_t early = 0;
      uint64_t late = 0;
      uint64_t stole = 0;
      Rng rng(71);
      verify::ForEachState(
          verify::Bounds{.num_cores = 4, .max_load = 4, .total_load = -1, .sorted_only = false},
          [&](const std::vector<int64_t>& loads) {
            MachineState machine = MachineState::FromLoads(loads);
            LoadBalancer balancer(policies::MakeThreadCount());
            RoundOptions options;
            options.recheck_filter = recheck;
            const RoundResult r = balancer.RunRound(machine, rng, options);
            for (const CoreAction& action : r.actions) {
              early += action.outcome == StealOutcome::kFailedRecheck ? 1 : 0;
              late += action.outcome == StealOutcome::kFailedNoTask ? 1 : 0;
              stole += action.outcome == StealOutcome::kStole ? 1 : 0;
            }
            return true;
          });
      rows.push_back({recheck ? "re-check ON (Listing 1 l.12)" : "re-check OFF",
                      F("%llu", static_cast<unsigned long long>(stole)),
                      F("%llu", static_cast<unsigned long long>(early)),
                      F("%llu", static_cast<unsigned long long>(late))});
    }
    bench::PrintTable({"variant", "steals", "rejected early (re-check, before task scan)",
                       "rejected late (migration rule, under locks)"},
                      rows);
    bench::Note("(same number of rejected steals either way — the migration rule is the\n"
                " backstop — but without the re-check every rejection happens after the\n"
                " victim's runqueue was scanned under both locks)");
  }

  bench::Section("E9b2 (D2): steal-phase re-check on vs off, real threads");
  {
    std::vector<std::vector<std::string>> rows;
    for (const bool recheck : {true, false}) {
      runtime::ExecutorConfig config;
      config.num_workers = 4;
      config.recheck_filter = recheck;
      config.spin_per_unit = 60;
      runtime::Executor executor(policies::MakeThreadCount(), config);
      std::vector<runtime::WorkItem> items;
      for (uint64_t i = 0; i < 2000; ++i) {
        items.push_back({.id = i, .work_units = 60, .weight = 1024});
      }
      executor.Seed(0, items);
      const auto report = executor.Run();
      uint64_t failed_recheck = 0;
      uint64_t failed_no_task = 0;
      uint64_t attempts = 0;
      for (const auto& w : report.workers) {
        failed_recheck += w.steals.failed_recheck;
        failed_no_task += w.steals.failed_no_task;
        attempts += w.steals.attempts;
      }
      rows.push_back({recheck ? "re-check ON (Listing 1 l.12)" : "re-check OFF",
                      F("%.1f", static_cast<double>(report.wall_time_ns) / 1e6),
                      F("%llu", static_cast<unsigned long long>(attempts)),
                      F("%llu", static_cast<unsigned long long>(failed_recheck)),
                      F("%llu", static_cast<unsigned long long>(failed_no_task))});
    }
    bench::PrintTable({"variant", "wall_ms", "lock-held attempts", "rejected early (re-check)",
                       "rejected late (migration rule)"},
                      rows);
    bench::Note("(without the re-check, stale-admitted steals are only rejected by the last-\n"
                " line migration-rule guard, after both locks were taken — optimism without\n"
                " the re-check just moves the failure later and makes it costlier)");
  }

  bench::Section("E9d (newidle): balance on becoming idle vs periodic ticks only");
  {
    // OLTP churn with a sluggish 10ms tick: how much idle time does pulling
    // work at the idle transition recover?
    std::vector<std::vector<std::string>> rows;
    const Topology topo = Topology::Numa(2, 8);
    for (const bool newidle : {false, true}) {
      sim::SimConfig config;
      config.max_time_us = 2'000'000;
      config.lb_period_us = 10'000;
      config.newidle_balance = newidle;
      config.wake_placement = sim::WakePlacement::kLastCpu;
      sim::Simulator s(topo, policies::MakeThreadCount(), config, 91);
      for (uint32_t i = 0; i < 24; ++i) {
        sim::TaskSpec spec;
        spec.total_service_us = 1'200'000;
        spec.burst_us = 4'000;
        spec.mean_block_us = 2'000;
        spec.home_node = 0;
        s.Submit(spec, 0, /*cpu_hint=*/i % 8);
      }
      s.RunUntil(config.max_time_us);
      rows.push_back({newidle ? "periodic + newidle" : "periodic only",
                      F("%llu", static_cast<unsigned long long>(s.metrics().bursts_completed)),
                      F("%.1f%%", s.accounting().wasted_fraction() * 100.0),
                      F("%.1f%%", s.accounting().utilization() * 100.0),
                      F("%llu", static_cast<unsigned long long>(s.metrics().newidle_steals)),
                      F("%.0f", s.metrics().ready_to_run_latency_us.mean())});
    }
    bench::PrintTable({"balancing", "transactions", "wasted_time", "utilization",
                       "newidle_steals", "mean ready->run (us)"},
                      rows);
    bench::Note("(newidle balancing is pure mechanism: same filter, same audited steal\n"
                " phase — it only moves a balancing opportunity to the moment idleness\n"
                " begins, cutting the wasted-time integral)");
  }

  bench::Section("E9e (batch): tasks moved per steal phase vs rounds to quiesce");
  {
    // Listing 1 moves one task per steal; CFS pulls a batch. Each batched
    // migration re-checks the filter and rule, so soundness is identical —
    // the trade-off is convergence speed vs overshoot when many thieves act
    // on one stale snapshot.
    std::vector<std::vector<std::string>> rows;
    for (const uint32_t batch : {1u, 2u, 4u, 8u}) {
      for (const uint32_t cores : {2u, 8u, 32u}) {
        Rng rng(67);
        stats::Summary rounds_summary;
        stats::Summary steals_summary;
        for (int trial = 0; trial < 50; ++trial) {
          std::vector<int64_t> loads(cores, 0);
          loads[0] = 3 * static_cast<int64_t>(cores);
          MachineState machine = MachineState::FromLoads(loads);
          LoadBalancer balancer(policies::MakeThreadCount());
          RoundOptions options;
          options.max_steals_per_attempt = batch;
          rounds_summary.Add(
              static_cast<double>(RunUntilQuiescent(balancer, machine, rng, options)));
          steals_summary.Add(static_cast<double>(balancer.stats().successes));
        }
        rows.push_back({F("%u", batch), F("%u", cores), F("%.1f", rounds_summary.mean()),
                        F("%.1f", steals_summary.mean())});
      }
    }
    bench::PrintTable({"batch size", "cores", "mean rounds to quiesce", "mean tasks moved"},
                      rows);
    bench::Note("(few thieves: batching collapses rounds; many thieves on one stale\n"
                " snapshot: batches overshoot and need smoothing rounds — same proofs\n"
                " either way, the knob is purely operational)");
  }

  bench::Section("E9c (margin): filter margin vs convergence and final balance");
  {
    std::vector<std::vector<std::string>> rows;
    for (const int64_t margin : {2ll, 3ll, 4ll, 8ll}) {
      const auto policy = policies::MakeThreadCount(margin);
      Rng rng(61);
      stats::Summary rounds_summary;
      stats::Summary steals_summary;
      stats::Summary final_spread;
      for (int trial = 0; trial < 100; ++trial) {
        std::vector<int64_t> loads(16, 0);
        for (int c = 0; c < 4; ++c) {
          loads[c] = rng.NextInRange(8, 16);
        }
        MachineState machine = MachineState::FromLoads(loads);
        LoadBalancer balancer(policy);
        const uint64_t rounds = RunUntilQuiescent(balancer, machine, rng, {}, 500);
        rounds_summary.Add(static_cast<double>(rounds));
        steals_summary.Add(static_cast<double>(balancer.stats().successes));
        const auto final_loads = machine.Loads(LoadMetric::kTaskCount);
        final_spread.Add(static_cast<double>(
            *std::max_element(final_loads.begin(), final_loads.end()) -
            *std::min_element(final_loads.begin(), final_loads.end())));
      }
      rows.push_back({F("%lld", static_cast<long long>(margin)),
                      F("%.1f", rounds_summary.mean()), F("%.1f", steals_summary.mean()),
                      F("%.2f", final_spread.mean())});
    }
    bench::PrintTable({"margin", "mean rounds to quiesce", "mean steals", "final max-min load"},
                      rows);
    bench::Note("(margin 2 is the smallest sound value: tighter final balance at the cost of\n"
                " more steals; larger margins quiesce earlier but leave residual imbalance —\n"
                " all margins are work-conserving, the trade is balance quality)");
  }

  return 0;
}
