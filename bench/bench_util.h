// Shared helpers for the experiment binaries: wall-clock timing and
// paper-style table/section output.

#ifndef OPTSCHED_BENCH_BENCH_UTIL_H_
#define OPTSCHED_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/str.h"

namespace optsched::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedUs() const { return ElapsedMs() * 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void PrintTable(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::printf("%s", RenderTable(header, rows).c_str());
}

inline std::string F(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline std::string F(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[512];
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return std::string(buffer);
}

}  // namespace optsched::bench

#endif  // OPTSCHED_BENCH_BENCH_UTIL_H_
