// Experiment E4 — the potential function d (§4.3).
//
// Paper claim: "the absolute 'load difference' between cores ... decreases
// with every successful stealing attempt", hence successful steals are
// bounded and, with failure causality, so are failures.
//
// Reproduction: (a) exhaustive check that every admissible steal strictly
// decreases d for the sound policies and that the broken policy violates it;
// (b) a traced run showing d per round for both; (c) the steals <= d0/2
// budget over random states.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/balancer.h"
#include "src/core/policies/broken.h"
#include "src/core/policies/registry.h"
#include "src/verify/lemmas.h"

namespace optsched {
namespace {

using bench::F;

}  // namespace
}  // namespace optsched

int main() {
  using namespace optsched;
  const Topology topo = Topology::Numa(2, 2);  // gives group policies 2 real groups

  bench::Section("E4a: exhaustive strict-decrease check per admissible steal");
  {
    std::vector<std::vector<std::string>> rows;
    for (const char* name : {"thread-count", "weighted-load", "hierarchical",
                             "broken-cansteal"}) {
      const auto policy = policies::MakePolicyByName(name, topo);
      verify::Bounds bounds;
      bounds.num_cores = 4;
      bounds.max_load = 5;
      const bench::Timer timer;
      const auto result = verify::CheckPotentialDecrease(*policy, bounds);
      rows.push_back({policy->name(),
                      F("%llu", static_cast<unsigned long long>(result.states_checked)),
                      F("%llu", static_cast<unsigned long long>(result.checks_performed)),
                      result.holds ? "strictly decreases" : "VIOLATED",
                      F("%.1f", timer.ElapsedMs())});
    }
    bench::PrintTable({"policy", "states", "admissible steals", "d per successful steal", "ms"},
                      rows);
  }

  bench::Section("E4b: d per concurrent round, start loads (12,0,0,0, 6,0,0,0)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const char* name : {"thread-count", "broken-cansteal"}) {
      const Topology topo8 = Topology::Smp(8);
      const auto policy = policies::MakePolicyByName(name, topo8);
      MachineState machine = MachineState::FromLoads({12, 0, 0, 0, 6, 0, 0, 0});
      LoadBalancer balancer(policy);
      Rng rng(5);
      std::string series = F("%lld", static_cast<long long>(
                                         machine.Potential(LoadMetric::kTaskCount)));
      uint64_t increases = 0;
      int64_t last = machine.Potential(LoadMetric::kTaskCount);
      for (int round = 0; round < 12; ++round) {
        balancer.RunRound(machine, rng);
        const int64_t d = machine.Potential(LoadMetric::kTaskCount);
        series += F(" %lld", static_cast<long long>(d));
        increases += (d > last) ? 1 : 0;
        last = d;
      }
      rows.push_back({policy->name(), series, F("%llu", static_cast<unsigned long long>(increases))});
    }
    bench::PrintTable({"policy", "d after rounds 0..12", "rounds where d increased"}, rows);
  }

  bench::Section("E4c: total successful steals vs the d0/2 budget (200 random starts)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const char* name : {"thread-count", "weighted-load", "broken-cansteal"}) {
      const auto policy = policies::MakePolicyByName(name, topo);
      Rng rng(11);
      uint64_t within = 0;
      uint64_t exceeded = 0;
      double worst_ratio = 0.0;
      for (int trial = 0; trial < 200; ++trial) {
        std::vector<int64_t> loads(6);
        for (auto& l : loads) {
          l = rng.NextInRange(0, 6);
        }
        MachineState machine = MachineState::FromLoads(loads);
        const int64_t d0 = machine.Potential(policy->metric());
        LoadBalancer balancer(policy);
        uint64_t steals = 0;
        for (int round = 0; round < 300; ++round) {
          const RoundResult r = balancer.RunRound(machine, rng);
          steals += r.successes;
          if (r.successes == 0 && name != std::string("broken-cansteal")) {
            break;
          }
        }
        const uint64_t budget = static_cast<uint64_t>(d0) / 2;
        if (steals <= budget || d0 == 0) {
          ++within;
        } else {
          ++exceeded;
        }
        if (d0 > 0) {
          worst_ratio = std::max(worst_ratio, static_cast<double>(steals) /
                                                  (static_cast<double>(d0) / 2.0));
        }
      }
      rows.push_back({policy->name(), F("%llu/200", static_cast<unsigned long long>(within)),
                      F("%llu/200", static_cast<unsigned long long>(exceeded)),
                      F("%.2fx", worst_ratio)});
    }
    bench::PrintTable({"policy", "runs within d0/2 budget", "runs exceeding", "worst steals/(d0/2)"},
                      rows);
  }

  bench::Note("\nExpected shape (paper): d strictly decreases per successful steal for the\n"
              "sound policies (so steals are bounded by d0/2); the broken filter both\n"
              "violates the per-steal decrease and blows through the budget (unbounded\n"
              "ping-pong).");
  return 0;
}
