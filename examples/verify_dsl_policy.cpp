// dslc: the policy compiler/verifier as a command-line tool.
//
// Reads a policy program (from a file, or the built-in Listing-1 sample when
// no argument is given), compiles it, runs the full verification audit, and
// emits the two backends — exactly the paper's pipeline: one DSL source,
// a kernel-ready C artifact and a Leon-ready Scala artifact, gated by proofs.
//
//   $ build/examples/verify_dsl_policy                # built-in sample
//   $ build/examples/verify_dsl_policy my_policy.osp  # your policy
//   $ build/examples/verify_dsl_policy my_policy.osp --emit-c --emit-scala

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/dsl/codegen.h"
#include "src/dsl/compile.h"
#include "src/verify/audit.h"

int main(int argc, char** argv) {
  using namespace optsched;

  std::string source = dsl::samples::kThreadCount;
  std::string source_name = "<built-in thread_count sample>";
  bool emit_c = false;
  bool emit_scala = false;
  bool emit_json = false;
  bool emit_demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-c") == 0) {
      emit_c = true;
    } else if (std::strcmp(argv[i], "--emit-scala") == 0) {
      emit_scala = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(argv[i], "--emit-demo") == 0) {
      emit_demo = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [policy-file] [--emit-c] [--emit-scala] [--emit-demo] [--json]\n"
          "  --emit-demo prints a self-contained C program that runs the paper's\n"
          "  3-core scenario under this policy (cc -std=c11 demo.c && ./a.out).\n",
          argv[0]);
      return 0;
    } else {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "error: cannot open '%s'\n", argv[i]);
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
      source_name = argv[i];
    }
  }

  std::printf("compiling %s\n", source_name.c_str());
  const dsl::CompileResult compiled = dsl::CompilePolicy(source);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compilation failed:\n%s\n", compiled.DiagnosticsToString().c_str());
    return 1;
  }
  std::printf("compiled policy '%s' (metric: %s)\n\n", compiled.policy->name().c_str(),
              compiled.policy->metric() == LoadMetric::kTaskCount ? "count" : "weighted");

  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 4;
  options.bounds.max_load = 4;
  const verify::PolicyAudit audit = verify::AuditPolicy(*compiled.policy, options);
  std::printf("%s\n", audit.Report().c_str());
  if (emit_json) {
    std::printf("--- audit (JSON) ---\n%s\n", audit.ToJson().c_str());
  }

  if (emit_c) {
    std::printf("--- C backend (%s) ---\n%s\n", source_name.c_str(),
                dsl::EmitC(*compiled.decl).c_str());
  }
  if (emit_scala) {
    std::printf("--- Scala/Leon backend (%s) ---\n%s\n", source_name.c_str(),
                dsl::EmitScala(*compiled.decl).c_str());
  }
  if (emit_demo) {
    std::printf("--- runnable C demo (%s) ---\n%s\n", source_name.c_str(),
                dsl::EmitCDemo(*compiled.decl).c_str());
  }
  return audit.work_conserving() ? 0 : 1;
}
