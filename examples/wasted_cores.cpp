// "A decade of wasted cores", in miniature.
//
// Runs the same fork-join workload on a 2-node NUMA machine under (a) the
// CFS-like baseline (group-average thresholds, designated balancer core,
// sticky wakeups) and (b) the proven Listing-1 policy, then renders the
// per-core load timelines so the wasted cores are literally visible:
// '.' idle, '#' running, digits = runqueue depth.
//
//   $ build/examples/wasted_cores

#include <cstdio>

#include "src/core/policies/cfs_like.h"
#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

int main() {
  using namespace optsched;
  const Topology topo = Topology::Numa(2, 8);

  struct Candidate {
    const char* label;
    std::shared_ptr<const BalancePolicy> policy;
  };
  const Candidate candidates[] = {
      {"cfs-like (group averages + designated core)",
       policies::MakeCfsLike(policies::GroupMap::ByNode(topo))},
      {"thread-count (proven work-conserving)", policies::MakeThreadCount()},
  };

  for (const Candidate& candidate : candidates) {
    sim::SimConfig config;
    config.max_time_us = 2'000'000'000;
    config.lb_period_us = 4'000;
    config.wake_placement = sim::WakePlacement::kLastCpu;
    config.sample_period_us = 2'000;
    sim::Simulator simulator(topo, candidate.policy, config, /*seed=*/7);

    workload::ForkJoinConfig workload;
    workload.num_phases = 4;
    workload.tasks_per_phase = 32;
    workload.task_service_us = 10'000;
    workload.master_cpu = 0;  // every phase forks on node 0
    auto keepalive = workload::InstallForkJoin(simulator, workload);

    simulator.Run();

    std::printf("=== %s ===\n", candidate.label);
    std::printf("%s\n", simulator.metrics().ToString().c_str());
    std::printf("%s\n", simulator.accounting().ToString().c_str());
    const auto episodes = simulator.sampler().WastedEpisodes();
    std::printf("idle-while-overloaded episodes: %zu\n", episodes.size());
    std::printf("timeline (rows=cpus, columns=time, '.'=idle, '#'=running, digit=queue):\n");
    std::printf("%s\n", simulator.sampler().RenderTimeline(96).c_str());
  }
  return 0;
}
