// Quickstart: define a machine, balance it with the paper's Listing-1 policy,
// and prove (within bounds) that the policy is work-conserving.
//
//   $ build/examples/quickstart

#include <cstdio>

#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/audit.h"

int main() {
  using namespace optsched;

  // --- 1. A machine in the paper's model: per-core runqueue + current task.
  // Four cores, loads (0, 1, 2, 5): core 0 is idle while cores 2 and 3 are
  // overloaded — the state a work-conserving scheduler must not sustain.
  MachineState machine = MachineState::FromLoads({0, 1, 2, 5});
  std::printf("before: %s\n", machine.ToString().c_str());
  std::printf("work-conserved: %s\n\n", machine.WorkConserved() ? "yes" : "NO");

  // --- 2. The Listing-1 policy and one concurrent load-balancing round.
  // Every core runs filter -> choice -> steal against a shared snapshot;
  // steals serialize and re-check the filter under the runqueue locks.
  LoadBalancer balancer(policies::MakeThreadCount());
  Rng rng(/*seed=*/42);
  const RoundResult round = balancer.RunRound(machine, rng);
  std::printf("round: %s\n", round.ToString().c_str());
  std::printf("after: %s\n", machine.ToString().c_str());
  std::printf("work-conserved: %s\n\n", machine.WorkConserved() ? "yes" : "NO");

  // --- 3. Keep balancing until no core wants to steal.
  const uint64_t rounds = RunUntilQuiescent(balancer, machine, rng);
  std::printf("quiescent after %llu more round(s): %s\n\n",
              static_cast<unsigned long long>(rounds), machine.ToString().c_str());

  // --- 4. The point of the paper: don't test it, prove it. The audit runs
  // every proof obligation (Lemma 1, steal safety, potential decrease,
  // failure causality, and AF(work-conserved) against every adversarial
  // steal order) over a bounded state space.
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 4;
  options.bounds.max_load = 4;
  const verify::PolicyAudit audit = verify::AuditPolicy(balancer.policy(), options);
  std::printf("%s", audit.Report().c_str());
  return audit.work_conserving() ? 0 : 1;
}
