// simctl: drive the simulator from the command line.
//
//   $ build/examples/simctl --policy=thread-count --nodes=2 --cpus=8 \
//         --workload=oltp --workers=32 --duration-ms=2000 --seed=7 [--timeline]
//
// Workloads: imbalance | forkjoin | oltp | poisson.
// Policies:  any name from the registry (see --help).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/policies/registry.h"
#include "src/sim/simulator.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics.h"
#include "src/workload/workloads.h"

namespace {

// "--key=value" parser; returns defaults when absent.
std::string FlagValue(int argc, char** argv, const char* key, const char* fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* key) {
  const std::string flag = std::string("--") + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

void PrintUsage(const char* prog) {
  std::printf("usage: %s [flags]\n", prog);
  std::printf("  --policy=NAME       one of:");
  for (const std::string& name : optsched::policies::KnownPolicyNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  std::printf("  --nodes=N --cpus=M  topology: N NUMA nodes x M cpus (default 2x8)\n");
  std::printf("  --workload=KIND     imbalance | forkjoin | oltp | poisson (default oltp)\n");
  std::printf("  --workers=N         task/worker count (default 32)\n");
  std::printf("  --duration-ms=T     simulated duration budget (default 2000)\n");
  std::printf("  --lb-period-us=T    balancing period (default 4000)\n");
  std::printf("  --wake=last|idle    wakeup placement (default last)\n");
  std::printf("  --seed=S            RNG seed (default 1)\n");
  std::printf("  --timeline          render the per-cpu load timeline\n");
  std::printf("  --trace-out=PATH    write a Chrome trace-event JSON (chrome://tracing)\n");
  std::printf("  --metrics           dump the full metrics registry (name=value lines)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace optsched;
  if (HasFlag(argc, argv, "help")) {
    PrintUsage(argv[0]);
    return 0;
  }

  const uint32_t nodes = static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "nodes", "2").c_str()));
  const uint32_t cpus = static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "cpus", "8").c_str()));
  const Topology topo = Topology::Numa(std::max(1u, nodes), std::max(1u, cpus));

  const std::string policy_name = FlagValue(argc, argv, "policy", "thread-count");
  const auto policy = policies::MakePolicyByName(policy_name, topo);
  if (policy == nullptr) {
    std::fprintf(stderr, "unknown policy '%s' (try --help)\n", policy_name.c_str());
    return 2;
  }

  const uint64_t duration_ms =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "duration-ms", "2000").c_str()));
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "seed", "1").c_str()));
  const uint32_t workers =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "workers", "32").c_str()));

  sim::SimConfig config;
  config.max_time_us = duration_ms * 1000;
  config.lb_period_us = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "lb-period-us", "4000").c_str()));
  config.wake_placement = FlagValue(argc, argv, "wake", "last") == std::string("idle")
                              ? sim::WakePlacement::kIdlePreferred
                              : sim::WakePlacement::kLastCpu;
  const bool timeline = HasFlag(argc, argv, "timeline");
  if (timeline) {
    config.sample_period_us = std::max<uint64_t>(1, config.max_time_us / 100);
  }
  const std::string trace_out = FlagValue(argc, argv, "trace-out", "");
  if (!trace_out.empty()) {
    config.trace_capacity = 1 << 20;
  }
  sim::Simulator simulator(topo, policy, config, seed);

  const std::string workload = FlagValue(argc, argv, "workload", "oltp");
  std::shared_ptr<void> keepalive;
  if (workload == "imbalance") {
    workload::StaticImbalanceConfig wl;
    wl.num_tasks = workers;
    wl.service_us = 50'000;
    workload::SubmitStaticImbalance(simulator, wl);
  } else if (workload == "forkjoin") {
    workload::ForkJoinConfig wl;
    wl.num_phases = 8;
    wl.tasks_per_phase = workers;
    wl.task_service_us = 10'000;
    wl.seed = seed;
    keepalive = workload::InstallForkJoin(simulator, wl);
  } else if (workload == "oltp") {
    workload::OltpConfig wl;
    wl.num_workers = workers;
    wl.duration_us = config.max_time_us;
    wl.seed = seed;
    workload::SubmitOltp(simulator, wl);
  } else if (workload == "poisson") {
    workload::PoissonConfig wl;
    wl.arrivals_per_sec = 100.0 * workers;
    wl.duration_us = config.max_time_us;
    wl.seed = seed;
    workload::SubmitPoisson(simulator, wl);
  } else {
    std::fprintf(stderr, "unknown workload '%s' (try --help)\n", workload.c_str());
    return 2;
  }

  simulator.Run();

  std::printf("topology:  %s\n", topo.ToString().c_str());
  std::printf("policy:    %s\n", policy->name().c_str());
  std::printf("workload:  %s (%u workers, %llums budget, seed %llu)\n", workload.c_str(),
              workers, static_cast<unsigned long long>(duration_ms),
              static_cast<unsigned long long>(seed));
  std::printf("metrics:   %s\n", simulator.metrics().ToString().c_str());
  std::printf("balancer:  %s\n", simulator.balance_stats().ToString().c_str());
  std::printf("cpu time:  %s\n", simulator.accounting().ToString().c_str());
  const auto& reactivity = simulator.metrics().ready_to_run_latency_us;
  if (reactivity.count() > 0) {
    std::printf("reactivity: %s\n", reactivity.ToString().c_str());
  }
  if (timeline) {
    std::printf("timeline ('.'=idle '#'=running digit=queue depth):\n%s",
                simulator.sampler().RenderTimeline(100).c_str());
  }
  if (HasFlag(argc, argv, "metrics")) {
    trace::MetricsRegistry registry;
    simulator.ExportMetrics(registry);
    std::printf("-- metrics --\n%s", registry.ToString().c_str());
  }
  if (!trace_out.empty()) {
    std::vector<std::string> lanes;
    for (CpuId cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      lanes.push_back("cpu " + std::to_string(cpu));
    }
    const auto& buffer = simulator.trace_buffer();
    const std::string json =
        trace::ToChromeTraceJson(buffer.events(), buffer.dropped(), lanes);
    if (!trace::WriteStringToFile(trace_out, json)) {
      std::fprintf(stderr, "failed to write trace to '%s'\n", trace_out.c_str());
      return 1;
    }
    std::printf("trace:     %zu events (%llu dropped) -> %s\n", buffer.events().size(),
                static_cast<unsigned long long>(buffer.dropped()), trace_out.c_str());
  }
  return 0;
}
