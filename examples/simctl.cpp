// simctl: drive the simulator — or the model checker — from the command line.
//
//   $ build/examples/simctl --policy=thread-count --nodes=2 --cpus=8 \
//         --workload=oltp --workers=32 --duration-ms=2000 --seed=7 [--timeline]
//
//   $ build/examples/simctl --mc --policy=broken-cansteal --mc-loads=0,1,2 \
//         --mc-attempts=3 --mc-bound=3 --minimize --mc-out=cex.json
//   $ build/examples/simctl --mc --replay=cex.json --trace-out=cex_trace.json
//
// Workloads: imbalance | forkjoin | oltp | poisson.
// Policies:  any name from the registry (see --help).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/policies/registry.h"
#include "src/sim/simulator.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics.h"
#include "src/workload/workloads.h"

#if OPTSCHED_MC_HOOKS
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "src/mc/explorer.h"
#include "src/mc/harness.h"
#include "src/mc/schedule.h"
#include "src/mc/trace_export.h"
#endif

namespace {

// "--key=value" parser; returns defaults when absent.
std::string FlagValue(int argc, char** argv, const char* key, const char* fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* key) {
  const std::string flag = std::string("--") + key;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

// True when the flag was explicitly passed, in either its bare ("--key") or
// valued ("--key=...") form. FlagValue cannot distinguish "absent" from
// "default", which is what lets harness-inapplicable flags be silently
// swallowed; applicability checks key off this instead.
bool FlagPresent(int argc, char** argv, const char* key) {
  const std::string bare = std::string("--") + key;
  const std::string valued = bare + "=";
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] ||
        std::strncmp(argv[i], valued.c_str(), valued.size()) == 0) {
      return true;
    }
  }
  return false;
}

void PrintUsage(const char* prog) {
  std::printf("usage: %s [flags]\n", prog);
  std::printf("  --policy=NAME       one of:");
  for (const std::string& name : optsched::policies::KnownPolicyNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  std::printf("  --nodes=N --cpus=M  topology: N NUMA nodes x M cpus (default 2x8)\n");
  std::printf("  --workload=KIND     imbalance | forkjoin | oltp | poisson (default oltp)\n");
  std::printf("  --workers=N         task/worker count (default 32)\n");
  std::printf("  --duration-ms=T     simulated duration budget (default 2000)\n");
  std::printf("  --lb-period-us=T    balancing period (default 4000)\n");
  std::printf("  --wake=last|idle    wakeup placement (default last)\n");
  std::printf("  --seed=S            RNG seed (default 1)\n");
  std::printf("  --timeline          render the per-cpu load timeline\n");
  std::printf("  --trace-out=PATH    write a Chrome trace-event JSON (chrome://tracing)\n");
  std::printf("  --metrics           dump the full metrics registry (name=value lines)\n");
  std::printf("model checker (src/mc):\n");
  std::printf("  --mc                explore schedules of the real steal protocol instead\n");
  std::printf("  --mc-harness=MODE   balance | drain | epoch | ingress | wakeup | forkjoin\n");
  std::printf("                      | deal (default balance)\n");
  std::printf("  --mc-backend=NAME   run-queue backend: locked | chase_lev (default locked)\n");
  std::printf("  --mc-deque-capacity=N  chase_lev ring capacity (default 64)\n");
  std::printf("  --mc-broken-steal-order  fault mode: thief reads bottom before top, no fence\n");
  std::printf("  --mc-loads=CSV      items seeded per queue, e.g. 0,1,2 (size = workers)\n");
  std::printf("  --mc-workers=N      shorthand for --mc-loads=0,1,...,N-1\n");
  std::printf("  --mc-attempts=N     steal attempts per worker (default 2)\n");
  std::printf("  --mc-batch=N        max items per steal action (default 1 = steal-one)\n");
  std::printf("  --mc-mailbox=N      ingress harness: mailbox capacity per owner (default 2)\n");
  std::printf("  --mc-break-batch    fault mode: unbounded batch ignoring the migration\n");
  std::printf("                      rule (the checker must find the steal-safety cex)\n");
  std::printf("  --mc-tree-depth=N   forkjoin harness: spawn-tree depth below the root (default 2)\n");
  std::printf("  --mc-fanout=N       forkjoin harness: children per internal node (default 2)\n");
  std::printf("  --mc-broken-join    fault mode: plain load/store join decrement loses a\n");
  std::printf("                      concurrent arrival (join-fires-exactly-once cex)\n");
  std::printf("  --mc-deal-window=N  deal harness: items the dealer takes per deal round (default 2)\n");
  std::printf("  --mc-broken-deal-window  fault mode: dealer drops the mailbox-refused tail\n");
  std::printf("                      of its window (no-lost-dealt-items cex)\n");
  std::printf("  harness-specific flags are rejected (exit 2) when passed to a harness or\n");
  std::printf("  backend they do not apply to, instead of being silently ignored\n");
  std::printf("  --mc-bound=N        preemption bound for exhaustive mode (default 2)\n");
  std::printf("  --mc-budget=N       completed+pruned execution budget for exhaustive mode\n");
  std::printf("                      (default 1048576)\n");
  std::printf("  --mc-mode=KIND      exhaustive | pct (default exhaustive)\n");
  std::printf("  --mc-samples=N      PCT executions to sample (default 256)\n");
  std::printf("  --replay=FILE       replay a recorded schedule JSON instead of exploring\n");
  std::printf("  --minimize          shrink a found counterexample before reporting\n");
  std::printf("  --mc-out=PATH       write the counterexample schedule JSON\n");
  std::printf("  (--trace-out and --seed also apply to --mc runs)\n");
}

#if OPTSCHED_MC_HOOKS

std::vector<int64_t> ParseLoads(const std::string& csv) {
  std::vector<int64_t> loads;
  std::stringstream stream(csv);
  std::string field;
  while (std::getline(stream, field, ',')) {
    if (!field.empty()) {
      loads.push_back(std::atoll(field.c_str()));
    }
  }
  return loads;
}

void PrintReports(const std::vector<optsched::mc::PropertyReport>& reports) {
  for (const auto& report : reports) {
    std::printf("  %-18s %s%s%s\n", report.name.c_str(), report.holds ? "HOLDS" : "VIOLATED",
                report.detail.empty() ? "" : " — ", report.detail.c_str());
  }
}

bool WriteFileOrComplain(const std::string& path, const std::string& content,
                         const char* what) {
  if (!optsched::trace::WriteStringToFile(path, content)) {
    std::fprintf(stderr, "failed to write %s to '%s'\n", what, path.c_str());
    return false;
  }
  std::printf("%s: -> %s\n", what, path.c_str());
  return true;
}

// Replays a committed schedule. Exit 0 = the replay reproduced the recorded
// verdict (the named property violated again, or a clean run stayed clean).
int RunMcReplay(const std::string& path, const std::string& trace_out) {
  using namespace optsched::mc;
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read schedule '%s'\n", path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::optional<Schedule> schedule = Schedule::FromJson(buffer.str());
  if (!schedule.has_value()) {
    std::fprintf(stderr, "'%s' is not a valid schedule JSON\n", path.c_str());
    return 2;
  }

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  const bool diverged = result.choices != schedule->choices;
  std::printf("replay:    %s (%zu choices%s)\n", path.c_str(), schedule->choices.size(),
              diverged ? ", DIVERGED" : "");
  const std::vector<PropertyReport> reports = harness.Evaluate(result);
  PrintReports(reports);
  if (!trace_out.empty() &&
      !WriteFileOrComplain(trace_out, ExecutionToChromeTraceJson(result, harness.num_workers()),
                           "trace")) {
    return 1;
  }

  bool reproduced;
  if (!schedule->property.empty()) {
    reproduced = false;
    for (const PropertyReport& report : reports) {
      reproduced |= report.name == schedule->property && !report.holds;
    }
    if (!reproduced) {
      std::fprintf(stderr, "recorded %s violation did NOT reproduce\n",
                   schedule->property.c_str());
    }
  } else {
    reproduced = StealHarness::FirstViolation(reports) == nullptr && !diverged;
  }
  return reproduced ? 0 : 1;
}

// Explores the configured harness. Exit 0 = every property held on every
// explored schedule; 1 = a counterexample was found (and written, if asked).
int RunMcExplore(int argc, char** argv) {
  using namespace optsched::mc;
  StealHarness::Config config;
  config.mode = FlagValue(argc, argv, "mc-harness", "balance");
  config.policy = FlagValue(argc, argv, "policy", "thread-count");
  config.attempts_per_worker =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "mc-attempts", "2").c_str()));
  config.seed = static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "seed", "1").c_str()));
  const int batch = std::atoi(FlagValue(argc, argv, "mc-batch", "1").c_str());
  config.max_steal_batch = batch >= 1 ? static_cast<uint32_t>(batch) : 1;
  config.break_batch_bound = HasFlag(argc, argv, "mc-break-batch");
  const int mailbox = std::atoi(FlagValue(argc, argv, "mc-mailbox", "2").c_str());
  config.mailbox_capacity = mailbox >= 1 ? static_cast<uint32_t>(mailbox) : 1;
  const std::string backend = FlagValue(argc, argv, "mc-backend", "locked");
  if (!optsched::runtime::ParseQueueBackend(backend, config.backend)) {
    std::fprintf(stderr, "unknown --mc-backend '%s' (locked | chase_lev)\n", backend.c_str());
    return 2;
  }
  const int deque_capacity =
      std::atoi(FlagValue(argc, argv, "mc-deque-capacity", "64").c_str());
  config.deque_capacity = deque_capacity >= 2 ? static_cast<uint32_t>(deque_capacity) : 64;
  config.broken_steal_order = HasFlag(argc, argv, "mc-broken-steal-order");
  const int tree_depth = std::atoi(FlagValue(argc, argv, "mc-tree-depth", "2").c_str());
  config.tree_depth = tree_depth >= 1 ? static_cast<uint32_t>(tree_depth) : 2;
  const int fanout = std::atoi(FlagValue(argc, argv, "mc-fanout", "2").c_str());
  config.fanout = fanout >= 1 ? static_cast<uint32_t>(fanout) : 2;
  config.broken_join_counter = HasFlag(argc, argv, "mc-broken-join");
  const int deal_window = std::atoi(FlagValue(argc, argv, "mc-deal-window", "2").c_str());
  config.deal_window = deal_window >= 1 ? static_cast<uint32_t>(deal_window) : 2;
  config.broken_deal_window = HasFlag(argc, argv, "mc-broken-deal-window");

  // Harness- and backend-specific flags are rejected up front when they do
  // not apply to this run, rather than silently parsed into fields the
  // harness never reads — a typo'd combination must not masquerade as a
  // clean sweep of the fault it meant to inject.
  static const char* kKnownModes[] = {"balance", "drain",    "epoch", "ingress",
                                      "wakeup",  "forkjoin", "deal"};
  bool known_mode = false;
  for (const char* m : kKnownModes) {
    known_mode |= config.mode == m;
  }
  if (!known_mode) {
    std::fprintf(stderr,
                 "unknown --mc-harness '%s' (balance | drain | epoch | ingress | wakeup "
                 "| forkjoin | deal)\n",
                 config.mode.c_str());
    return 2;
  }
  const bool forkjoin_mode = config.mode == "forkjoin";
  const bool deal_mode = config.mode == "deal";
  const bool mailbox_mode = config.mode == "ingress" || config.mode == "wakeup" || deal_mode;
  const bool chase_lev = config.backend == optsched::runtime::QueueBackend::kChaseLev;
  struct FlagScope {
    const char* flag;
    bool applicable;
    const char* scope;
  };
  const FlagScope kScopedFlags[] = {
      {"mc-tree-depth", forkjoin_mode, "the forkjoin harness"},
      {"mc-fanout", forkjoin_mode, "the forkjoin harness"},
      {"mc-broken-join", forkjoin_mode, "the forkjoin harness"},
      {"mc-mailbox", mailbox_mode, "the ingress, wakeup and deal harnesses"},
      {"mc-deal-window", deal_mode, "the deal harness"},
      {"mc-broken-deal-window", deal_mode, "the deal harness"},
      {"mc-broken-steal-order", chase_lev, "the chase_lev backend"},
  };
  for (const FlagScope& scoped : kScopedFlags) {
    if (FlagPresent(argc, argv, scoped.flag) && !scoped.applicable) {
      std::fprintf(stderr,
                   "--%s only applies to %s (this run: --mc-harness=%s, --mc-backend=%s)\n",
                   scoped.flag, scoped.scope, config.mode.c_str(),
                   optsched::runtime::QueueBackendName(config.backend));
      return 2;
    }
  }

  config.initial_loads = ParseLoads(FlagValue(argc, argv, "mc-loads", ""));
  if (config.initial_loads.empty()) {
    const int workers = std::atoi(FlagValue(argc, argv, "mc-workers", "3").c_str());
    for (int i = 0; i < workers; ++i) {
      // Forkjoin seeds only the root task: the loads must be all zero there.
      // Deal seeds the dealer (worker 0) above the deal threshold and every
      // peer idle, so deal rounds are reachable at all.
      const int64_t load = config.mode == "forkjoin" ? 0
                           : config.mode == "deal"   ? (i == 0 ? 4 : 0)
                                                     : i;
      config.initial_loads.push_back(load);
    }
  }
  StealHarness harness(config);
  std::printf("mc:        %s harness, %s backend%s, policy %s, loads ", config.mode.c_str(),
              optsched::runtime::QueueBackendName(config.backend),
              config.broken_steal_order ? " (BROKEN STEAL ORDER)" : "", config.policy.c_str());
  for (size_t i = 0; i < config.initial_loads.size(); ++i) {
    std::printf("%s%lld", i ? "," : "", static_cast<long long>(config.initial_loads[i]));
  }
  std::printf(", %u attempts, batch %u%s, d0/2 = %lld\n", config.attempts_per_worker,
              config.max_steal_batch, config.break_batch_bound ? " (BROKEN BOUND)" : "",
              static_cast<long long>(harness.InitialPotential() / 2));

  std::vector<uint32_t> counterexample;
  std::vector<PropertyReport> violated_reports;
  auto sink = [&](const ExecutionResult& result, uint32_t) {
    const std::vector<PropertyReport> reports = harness.Evaluate(result);
    if (StealHarness::FirstViolation(reports) != nullptr) {
      counterexample = result.choices;
      violated_reports = reports;
      return false;
    }
    return true;
  };

  const std::string mode = FlagValue(argc, argv, "mc-mode", "exhaustive");
  uint64_t executions = 0;
  if (mode == "exhaustive") {
    DfsExplorer::Options options;
    options.max_preemptions =
        static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "mc-bound", "2").c_str()));
    const long long budget = std::atoll(FlagValue(argc, argv, "mc-budget", "0").c_str());
    if (budget >= 1) {
      options.max_schedules = static_cast<uint64_t>(budget);
    }
    DfsExplorer explorer(options);
    const ExploreStats stats = explorer.Explore(harness.Factory(), sink);
    executions = stats.schedules_explored;
    std::printf("explored:  %llu schedules (%llu pruned, %llu deadlocks, bound %u)%s\n",
                static_cast<unsigned long long>(stats.schedules_explored),
                static_cast<unsigned long long>(stats.schedules_pruned),
                static_cast<unsigned long long>(stats.deadlocks), stats.bound_reached,
                stats.budget_exhausted ? " [budget exhausted]" : "");
  } else if (mode == "pct") {
    const int samples = std::atoi(FlagValue(argc, argv, "mc-samples", "256").c_str());
    PctStrategy pct(harness.num_workers(), /*depth_estimate=*/256, /*num_change_points=*/3,
                    config.seed);
    for (int i = 0; i < samples && counterexample.empty(); ++i) {
      Scheduler scheduler;
      const ExecutionResult result = scheduler.Run(harness.MakeBodies(), pct);
      ++executions;
      (void)sink(result, 0);
      pct.Reset();
    }
    std::printf("sampled:   %llu PCT executions\n", static_cast<unsigned long long>(executions));
  } else {
    std::fprintf(stderr, "unknown --mc-mode '%s' (exhaustive | pct)\n", mode.c_str());
    return 2;
  }

  if (counterexample.empty() && violated_reports.empty()) {
    std::printf("verdict:   all properties hold on every explored schedule\n");
    return 0;
  }

  const PropertyReport* first = StealHarness::FirstViolation(violated_reports);
  std::printf("verdict:   VIOLATED (%zu choices)\n", counterexample.size());
  PrintReports(violated_reports);

  auto violates_same = [&](const ExecutionResult& result) {
    for (const PropertyReport& report : harness.Evaluate(result)) {
      if (report.name == first->name && !report.holds) {
        return true;
      }
    }
    return false;
  };
  if (HasFlag(argc, argv, "minimize")) {
    const size_t before = counterexample.size();
    counterexample = MinimizeCounterexample(harness.Factory(), counterexample, violates_same);
    std::printf("minimized: %zu -> %zu choices\n", before, counterexample.size());
  }

  // Pin down the final execution for the schedule note and the trace.
  const ExecutionResult final_run = ReplayChoices(harness.Factory(), counterexample);
  const std::vector<PropertyReport> final_reports = harness.Evaluate(final_run);
  Schedule schedule = harness.MakeSchedule(counterexample);
  schedule.property = first->name;
  for (const PropertyReport& report : final_reports) {
    if (report.name == first->name && !report.holds) {
      schedule.note = report.detail;
    }
  }

  const std::string mc_out = FlagValue(argc, argv, "mc-out", "");
  if (!mc_out.empty() && !WriteFileOrComplain(mc_out, schedule.ToJson(), "schedule")) {
    return 2;
  }
  const std::string trace_out = FlagValue(argc, argv, "trace-out", "");
  if (!trace_out.empty() &&
      !WriteFileOrComplain(trace_out,
                           ExecutionToChromeTraceJson(final_run, harness.num_workers()),
                           "trace")) {
    return 2;
  }
  return 1;
}

#endif  // OPTSCHED_MC_HOOKS

}  // namespace

int main(int argc, char** argv) {
  using namespace optsched;
  if (HasFlag(argc, argv, "help")) {
    PrintUsage(argv[0]);
    return 0;
  }

  if (HasFlag(argc, argv, "mc")) {
#if OPTSCHED_MC_HOOKS
    const std::string replay = FlagValue(argc, argv, "replay", "");
    if (!replay.empty()) {
      return RunMcReplay(replay, FlagValue(argc, argv, "trace-out", ""));
    }
    return RunMcExplore(argc, argv);
#else
    std::fprintf(stderr, "model checker not built: reconfigure with -DOPTSCHED_MC_HOOKS=ON\n");
    return 2;
#endif
  }

  const uint32_t nodes = static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "nodes", "2").c_str()));
  const uint32_t cpus = static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "cpus", "8").c_str()));
  const Topology topo = Topology::Numa(std::max(1u, nodes), std::max(1u, cpus));

  const std::string policy_name = FlagValue(argc, argv, "policy", "thread-count");
  const auto policy = policies::MakePolicyByName(policy_name, topo);
  if (policy == nullptr) {
    std::fprintf(stderr, "unknown policy '%s' (try --help)\n", policy_name.c_str());
    return 2;
  }

  const uint64_t duration_ms =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "duration-ms", "2000").c_str()));
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "seed", "1").c_str()));
  const uint32_t workers =
      static_cast<uint32_t>(std::atoi(FlagValue(argc, argv, "workers", "32").c_str()));

  sim::SimConfig config;
  config.max_time_us = duration_ms * 1000;
  config.lb_period_us = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "lb-period-us", "4000").c_str()));
  config.wake_placement = FlagValue(argc, argv, "wake", "last") == std::string("idle")
                              ? sim::WakePlacement::kIdlePreferred
                              : sim::WakePlacement::kLastCpu;
  const bool timeline = HasFlag(argc, argv, "timeline");
  if (timeline) {
    config.sample_period_us = std::max<uint64_t>(1, config.max_time_us / 100);
  }
  const std::string trace_out = FlagValue(argc, argv, "trace-out", "");
  if (!trace_out.empty()) {
    config.trace_capacity = 1 << 20;
  }
  sim::Simulator simulator(topo, policy, config, seed);

  const std::string workload = FlagValue(argc, argv, "workload", "oltp");
  std::shared_ptr<void> keepalive;
  if (workload == "imbalance") {
    workload::StaticImbalanceConfig wl;
    wl.num_tasks = workers;
    wl.service_us = 50'000;
    workload::SubmitStaticImbalance(simulator, wl);
  } else if (workload == "forkjoin") {
    workload::ForkJoinConfig wl;
    wl.num_phases = 8;
    wl.tasks_per_phase = workers;
    wl.task_service_us = 10'000;
    wl.seed = seed;
    keepalive = workload::InstallForkJoin(simulator, wl);
  } else if (workload == "oltp") {
    workload::OltpConfig wl;
    wl.num_workers = workers;
    wl.duration_us = config.max_time_us;
    wl.seed = seed;
    workload::SubmitOltp(simulator, wl);
  } else if (workload == "poisson") {
    workload::PoissonConfig wl;
    wl.arrivals_per_sec = 100.0 * workers;
    wl.duration_us = config.max_time_us;
    wl.seed = seed;
    workload::SubmitPoisson(simulator, wl);
  } else {
    std::fprintf(stderr, "unknown workload '%s' (try --help)\n", workload.c_str());
    return 2;
  }

  simulator.Run();

  std::printf("topology:  %s\n", topo.ToString().c_str());
  std::printf("policy:    %s\n", policy->name().c_str());
  std::printf("workload:  %s (%u workers, %llums budget, seed %llu)\n", workload.c_str(),
              workers, static_cast<unsigned long long>(duration_ms),
              static_cast<unsigned long long>(seed));
  std::printf("metrics:   %s\n", simulator.metrics().ToString().c_str());
  std::printf("balancer:  %s\n", simulator.balance_stats().ToString().c_str());
  std::printf("cpu time:  %s\n", simulator.accounting().ToString().c_str());
  const auto& reactivity = simulator.metrics().ready_to_run_latency_us;
  if (reactivity.count() > 0) {
    std::printf("reactivity: %s\n", reactivity.ToString().c_str());
  }
  if (timeline) {
    std::printf("timeline ('.'=idle '#'=running digit=queue depth):\n%s",
                simulator.sampler().RenderTimeline(100).c_str());
  }
  if (HasFlag(argc, argv, "metrics")) {
    trace::MetricsRegistry registry;
    simulator.ExportMetrics(registry);
    std::printf("-- metrics --\n%s", registry.ToString().c_str());
  }
  if (!trace_out.empty()) {
    std::vector<std::string> lanes;
    for (CpuId cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      lanes.push_back("cpu " + std::to_string(cpu));
    }
    const auto& buffer = simulator.trace_buffer();
    const std::string json =
        trace::ToChromeTraceJson(buffer.events(), buffer.dropped(), lanes);
    if (!trace::WriteStringToFile(trace_out, json)) {
      std::fprintf(stderr, "failed to write trace to '%s'\n", trace_out.c_str());
      return 1;
    }
    std::printf("trace:     %zu events (%llu dropped) -> %s\n", buffer.events().size(),
                static_cast<unsigned long long>(buffer.dropped()), trace_out.c_str());
  }
  return 0;
}
