// A database-style deployment on a NUMA machine, scheduled by a policy
// written in the DSL.
//
// The policy source is the shipped `numa_aware` program: the Listing-1 filter
// (so all proofs apply) with a NUMA-nearest CHOICE step, compiled at runtime,
// audited, and then used to schedule an OLTP workload whose transactions
// arrive skewed onto node 0.
//
//   $ build/examples/numa_database

#include <cstdio>

#include "src/dsl/compile.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/verify/audit.h"
#include "src/workload/workloads.h"

int main() {
  using namespace optsched;

  // --- Compile and audit the DSL policy. ------------------------------------
  const dsl::CompileResult compiled = dsl::CompilePolicy(dsl::samples::kNumaAware);
  if (!compiled.ok()) {
    std::fprintf(stderr, "policy compilation failed:\n%s\n",
                 compiled.DiagnosticsToString().c_str());
    return 1;
  }
  verify::ConvergenceCheckOptions audit_options;
  audit_options.bounds.num_cores = 3;
  audit_options.bounds.max_load = 4;
  const verify::PolicyAudit audit = verify::AuditPolicy(*compiled.policy, audit_options);
  std::printf("%s\n", audit.Report().c_str());
  if (!audit.work_conserving()) {
    std::fprintf(stderr, "refusing to deploy a policy that failed its audit\n");
    return 1;
  }

  // --- Deploy it on a 4-node machine under an OLTP workload. ----------------
  const Topology topo = Topology::Numa(4, 8);
  sim::SimConfig config;
  config.max_time_us = 3'000'000;
  config.lb_period_us = 4'000;
  config.wake_placement = sim::WakePlacement::kLastCpu;  // the balancer does the work
  config.trace_capacity = 1 << 18;                       // record steals for the locality mix
  sim::Simulator simulator(topo, compiled.policy, config, /*seed=*/11);

  // 64 connection workers: 1ms transactions, exponential think time, homes
  // skewed 50% onto node 0 (the "listener" node), the rest spread.
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 1'000'000;
    spec.burst_us = 1'000;
    spec.mean_block_us = 800;
    spec.home_node = (i % 2 == 0) ? 0 : static_cast<NodeId>(1 + rng.NextBelow(3));
    simulator.Submit(spec, 0);
  }
  simulator.Run();

  const sim::SimMetrics& m = simulator.metrics();
  std::printf("=== numa_database run (%s) ===\n", topo.ToString().c_str());
  std::printf("%s\n", m.ToString().c_str());
  std::printf("utilization: %.1f%%\n", simulator.accounting().utilization() * 100.0);
  std::printf("transactions: %llu (%.1f per ms)\n",
              static_cast<unsigned long long>(m.bursts_completed),
              static_cast<double>(m.bursts_completed) /
                  (static_cast<double>(simulator.now()) / 1000.0));
  std::printf("transaction latency: %s\n", m.burst_latency_us.ToString().c_str());
  std::printf("steal failures (optimism at work): %llu of %llu attempts\n",
              static_cast<unsigned long long>(simulator.balance_stats().failures()),
              static_cast<unsigned long long>(simulator.balance_stats().attempts));

  // Cross-node steals should be the minority: the nearest-first choice keeps
  // migrations local whenever the filter offers a local candidate.
  uint64_t local = 0;
  uint64_t remote = 0;
  for (const auto& event : simulator.trace_buffer().Filter(trace::EventType::kSteal)) {
    (topo.SharesNode(event.cpu, event.other_cpu) ? local : remote) += 1;
  }
  if (local + remote == 0) {
    std::printf("(tracing disabled; rebuild with config.trace_capacity to see steal mix)\n");
  } else {
    std::printf("steal locality: %llu intra-node, %llu cross-node\n",
                static_cast<unsigned long long>(local),
                static_cast<unsigned long long>(remote));
  }
  return 0;
}
