// Hierarchical balancing done right and done wrong (paper section 5).
//
// Two ways to "balance between groups of cores, and then inside groups":
//  * put the hierarchy in the CHOICE step  -> all proofs survive;
//  * put group aggregates in the FILTER    -> Lemma 1 breaks, and with uneven
//    groups the machine can stick forever in a non-work-conserved state.
// This example shows both, with the verifier's counterexamples.
//
//   $ build/examples/hierarchical_groups

#include <cstdio>

#include "src/core/conservation.h"
#include "src/core/policies/hierarchical.h"
#include "src/verify/audit.h"

int main() {
  using namespace optsched;
  using policies::GroupMap;

  // A 6-core machine split 4 + 2 (think: one big and one small cluster).
  const GroupMap groups = GroupMap::Contiguous(6, 4);

  std::printf("=== sound: hierarchy in the choice step ===\n");
  {
    const auto policy = policies::MakeHierarchical(groups);
    verify::ConvergenceCheckOptions options;
    options.bounds.num_cores = 6;
    options.bounds.max_load = 2;
    options.max_orders_per_state = 120;  // 6! = 720 orders is slow; sample
    const verify::PolicyAudit audit = verify::AuditPolicy(*policy, options);
    std::printf("%s\n", audit.Report().c_str());
  }

  std::printf("=== unsound: group sums in the filter ===\n");
  {
    const auto policy = policies::MakeGroupSum(groups);
    verify::Bounds bounds;
    bounds.num_cores = 6;
    bounds.max_load = 2;
    const auto lemma1 = verify::CheckLemma1(*policy, bounds);
    std::printf("%s\n", lemma1.ToString().c_str());

    // Drive the starvation fixpoint by hand: loads (0,1,1,1 | 2,1), group
    // sums 3 vs 3. No filter fires anywhere; core 0 starves forever.
    MachineState machine = MachineState::FromLoads({0, 1, 1, 1, 2, 1});
    LoadBalancer balancer(policy);
    Rng rng(1);
    for (int round = 0; round < 10; ++round) {
      const RoundResult r = balancer.RunRound(machine, rng);
      std::printf("round %2d: %s  attempts=%u\n", round + 1,
                  machine.WorkConserved() ? "work-conserved" : "core 0 idle, core 4 overloaded",
                  r.attempts);
    }
  }

  std::printf("\n=== same start state under the sound construction ===\n");
  {
    MachineState machine = MachineState::FromLoads({0, 1, 1, 1, 2, 1});
    LoadBalancer balancer(policies::MakeHierarchical(groups));
    Rng rng(1);
    const ConvergenceResult result = RunUntilWorkConserved(balancer, machine, rng);
    std::printf("%s\n", result.ToString().c_str());
  }
  return 0;
}
